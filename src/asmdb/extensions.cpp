#include "asmdb/extensions.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/simulator.hpp"

namespace sipre::asmdb
{

std::unordered_map<Addr, std::vector<Addr>>
buildMetadataMap(const AsmdbPlan &plan)
{
    std::unordered_map<Addr, std::vector<Addr>> metadata;
    for (const Insertion &ins : plan.insertions) {
        auto &targets = metadata[ins.site_pc & ~Addr{63}];
        if (std::find(targets.begin(), targets.end(), ins.target_line) ==
            targets.end()) {
            targets.push_back(ins.target_line);
        }
    }
    return metadata;
}

FeedbackResult
runFeedbackDirected(const Trace &trace, const SimConfig &config,
                    const AsmdbParams &params,
                    const FeedbackParams &feedback)
{
    FeedbackResult result;

    // Round 0: the standard AsmDB pipeline.
    AsmdbArtifacts artifacts = runPipeline(trace, config, params);
    result.decision = artifacts.decision;
    result.plan = artifacts.plan;
    result.insertions_per_round.push_back(result.plan.insertions.size());

    // Profile miss counts per line (re-derive from the pipeline's
    // profile run by re-running the hook; cheaper: reconstruct from the
    // plan's targets is lossy, so profile again).
    std::unordered_map<Addr, std::uint64_t> profile_misses;
    {
        Simulator sim(config, trace);
        sim.setL1iMissHook(
            [&profile_misses](Addr line) { ++profile_misses[line]; });
        sim.run();
    }

    for (std::size_t round = 0; round < feedback.rounds; ++round) {
        // Evaluate the current plan in no-overhead form so line
        // addresses stay comparable with the profile.
        SwPrefetchTriggers triggers = buildTriggers(result.plan);
        std::unordered_map<Addr, std::uint64_t> eval_misses;
        {
            Simulator sim(config, trace);
            sim.setSwPrefetchTriggers(&triggers);
            sim.setL1iMissHook(
                [&eval_misses](Addr line) { ++eval_misses[line]; });
            sim.run();
        }

        // Drop targets whose misses did not improve enough: their
        // prefetches are overhead without benefit.
        std::unordered_set<Addr> dropped_targets;
        for (const Insertion &ins : result.plan.insertions) {
            auto before = profile_misses.find(ins.target_line);
            if (before == profile_misses.end() || before->second == 0)
                continue;
            const auto after_it = eval_misses.find(ins.target_line);
            const double after =
                after_it == eval_misses.end()
                    ? 0.0
                    : static_cast<double>(after_it->second);
            const double improvement =
                1.0 - after / static_cast<double>(before->second);
            if (improvement < feedback.required_improvement)
                dropped_targets.insert(ins.target_line);
        }
        if (dropped_targets.empty())
            break;

        std::vector<Insertion> kept;
        kept.reserve(result.plan.insertions.size());
        for (const Insertion &ins : result.plan.insertions) {
            if (dropped_targets.count(ins.target_line) == 0)
                kept.push_back(ins);
            else
                ++result.dropped_insertions;
        }
        result.plan.insertions = std::move(kept);
        result.insertions_per_round.push_back(
            result.plan.insertions.size());
    }

    const CodeLayout layout(result.plan);
    result.rewrite = rewriteTrace(trace, result.plan, layout);
    result.triggers = buildTriggers(result.plan);
    return result;
}

} // namespace sipre::asmdb
