/**
 * @file
 * The two future directions the paper proposes in Sec. VI, built on the
 * AsmDB pipeline: metadata preloading (see core/metadata_preload.hpp)
 * and feedback-directed software prefetching (iteratively re-tuning the
 * inserted prefetches based on their measured impact).
 */
#ifndef SIPRE_ASMDB_EXTENSIONS_HPP
#define SIPRE_ASMDB_EXTENSIONS_HPP

#include <unordered_map>
#include <vector>

#include "asmdb/pipeline.hpp"

namespace sipre::asmdb
{

/**
 * Convert a plan into metadata keyed by *trigger line*: accessing the
 * line containing an insertion site triggers that site's prefetches.
 * This is the metadata a preloader ships to the LLC instead of
 * inserting instructions into the binary.
 */
std::unordered_map<Addr, std::vector<Addr>> buildMetadataMap(
    const AsmdbPlan &plan);

/** Feedback-directed insertion parameters. */
struct FeedbackParams
{
    std::size_t rounds = 2;

    /**
     * A target is kept only when the evaluation run shows its misses
     * dropped by at least this fraction relative to the profile.
     */
    double required_improvement = 0.25;
};

/** Outcome of the feedback loop. */
struct FeedbackResult
{
    DistanceDecision decision;   ///< round-0 distance-provider output
    AsmdbPlan plan;              ///< pruned plan after the last round
    RewriteResult rewrite;       ///< trace rewritten with the final plan
    SwPrefetchTriggers triggers; ///< no-overhead form of the final plan
    std::vector<std::size_t> insertions_per_round;
    std::uint64_t dropped_insertions = 0;
};

/**
 * Feedback-directed software prefetching: profile, plan, then run
 * evaluation rounds that drop prefetch targets whose misses did not
 * improve, cutting code bloat while keeping the effective prefetches
 * (the binary-update loop the paper sketches after AutoFDO).
 */
FeedbackResult runFeedbackDirected(const Trace &trace,
                                   const SimConfig &config,
                                   const AsmdbParams &params = {},
                                   const FeedbackParams &feedback = {});

} // namespace sipre::asmdb

#endif // SIPRE_ASMDB_EXTENSIONS_HPP
