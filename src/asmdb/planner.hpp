/**
 * @file
 * The AsmDB insertion planner: rank high-impact L1-I misses, traverse
 * the CFG backward from each target, and select insertion sites that
 * are at least one LLC-latency's worth of instructions ahead of the
 * miss (the paper's "minimum distance"), within a bounded window, and
 * likely enough to lead to the miss (the "fanout" criterion).
 */
#ifndef SIPRE_ASMDB_PLANNER_HPP
#define SIPRE_ASMDB_PLANNER_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asmdb/cfg.hpp"
#include "core/options.hpp"

namespace sipre
{
struct SimResult;
}

namespace sipre::asmdb
{

/** AsmDB tuning knobs (paper Sec. II-B). */
struct AsmdbParams
{
    /** Fraction of profiled misses the plan tries to target. */
    double coverage = 0.9;

    /** Cap on distinct target lines (highest-miss first). */
    std::size_t max_targets = 8192;

    /**
     * Minimum probability that executing the insertion site leads to
     * the target within the window. Lower values = more aggressive
     * fanout (more coverage, less accuracy).
     */
    double min_path_prob = 0.10;

    /** Window = window_mult * min_distance instructions. */
    double window_mult = 4.0;

    /** Cap on insertion sites selected per target line. */
    std::size_t max_sites_per_target = 6;

    /** Per-target expected-execution coverage goal. */
    double per_target_coverage = 0.9;

    /** Where the plan's prefetch distances come from. */
    DistanceProviderKind distance_provider =
        DistanceProviderKind::kStatic;

    /**
     * Optional prior-run result for the `profile` provider (the
     * two-pass profile→instrument flow): its IPC, miss rates, and
     * Scenario-2 attribution refine the distances. Not owned; must
     * outlive the pipeline call. Null = the provider falls back to
     * this pass's own profiling run.
     */
    const SimResult *external_profile = nullptr;
};

/** Per-target-line distance override chosen by a provider. */
struct TargetTuning
{
    std::uint32_t min_distance = 0;
    std::uint32_t window = 0;
};

/**
 * A provider's answer: the global minimum distance and traversal
 * window, plus optional per-target-line overrides. With an empty
 * override map this reduces to the classic single-policy planner.
 */
struct DistanceDecision
{
    std::uint32_t min_distance = 0; ///< instructions ahead of the miss
    std::uint32_t window = 0;       ///< traversal cutoff, instructions
    /** Overrides keyed by target line address (old layout). */
    std::unordered_map<Addr, TargetTuning> overrides;
    /** Evaluation simulations the provider consumed (adaptive). */
    std::uint64_t eval_runs = 0;

    std::uint32_t
    distanceFor(Addr line) const
    {
        const auto it = overrides.find(line);
        return it == overrides.end() ? min_distance
                                     : it->second.min_distance;
    }

    std::uint32_t
    windowFor(Addr line) const
    {
        const auto it = overrides.find(line);
        return it == overrides.end() ? window : it->second.window;
    }
};

/**
 * The classic static policy as a decision: min_distance =
 * ceil(max(0.1, profiled_ipc) × miss_latency), window = min_distance ×
 * max(1, window_mult). Byte-identical to the pre-provider planner.
 */
DistanceDecision staticDecision(double profiled_ipc, Cycle miss_latency,
                                const AsmdbParams &params);

/** One planned software prefetch. */
struct Insertion
{
    Addr site_pc = 0;     ///< insert before this (old-layout) instruction
    Addr target_line = 0; ///< line to prefetch (old layout)
    double path_prob = 0.0;
    std::uint64_t expected_covered = 0;

    /**
     * Consecutive lines covered by this one prefetch (I-SPY-style
     * coalescing); 1 = a plain AsmDB prefetch.
     */
    std::uint8_t range = 1;
};

/** The complete plan for one binary. */
struct AsmdbPlan
{
    std::vector<Insertion> insertions; ///< sorted by site_pc
    std::uint64_t total_misses = 0;    ///< misses in the profile
    std::uint64_t targeted_misses = 0; ///< misses covered by targets
    std::uint32_t min_distance = 0;    ///< instructions (IPC * LLC lat)
    std::uint32_t window = 0;          ///< instructions
};

/**
 * Build an insertion plan.
 *
 * @param cfg          profiled CFG
 * @param line_misses  per-line L1-I demand miss counts from profiling
 * @param profiled_ipc IPC of the profiling run (sets the min distance)
 * @param llc_latency  LLC access latency in cycles
 * @param params       aggressiveness knobs (window, fanout threshold)
 */
AsmdbPlan buildPlan(const Cfg &cfg,
                    const std::unordered_map<Addr, std::uint64_t>
                        &line_misses,
                    double profiled_ipc, Cycle llc_latency,
                    const AsmdbParams &params);

/**
 * Build an insertion plan under an explicit distance decision: each
 * target's backward traversal honors the decision's (possibly
 * per-target) minimum distance and window. The legacy overload above
 * is exactly this with staticDecision().
 */
AsmdbPlan buildPlan(const Cfg &cfg,
                    const std::unordered_map<Addr, std::uint64_t>
                        &line_misses,
                    const DistanceDecision &decision,
                    const AsmdbParams &params);

/**
 * I-SPY-style coalescing: merge prefetches from the same site whose
 * targets are adjacent lines into single ranged prefetches covering up
 * to max_range consecutive lines. Cuts inserted-instruction overhead
 * without losing coverage.
 */
AsmdbPlan coalescePlan(const AsmdbPlan &plan, unsigned max_range = 4);

} // namespace sipre::asmdb

#endif // SIPRE_ASMDB_PLANNER_HPP
