#include "asmdb/layout.hpp"

#include <algorithm>

namespace sipre::asmdb
{

CodeLayout::CodeLayout(const AsmdbPlan &plan)
{
    sites_.reserve(plan.insertions.size());
    for (const Insertion &ins : plan.insertions)
        sites_.push_back(ins.site_pc);
    std::sort(sites_.begin(), sites_.end());
}

std::uint64_t
CodeLayout::insertionsBefore(Addr old_pc) const
{
    // Prefetches inserted *at* old_pc sit before the instruction that
    // was at old_pc, so they count as well (upper_bound, not lower).
    return static_cast<std::uint64_t>(
        std::upper_bound(sites_.begin(), sites_.end(), old_pc) -
        sites_.begin());
}

Addr
CodeLayout::map(Addr old_pc) const
{
    return old_pc + 4 * insertionsBefore(old_pc);
}

} // namespace sipre::asmdb
