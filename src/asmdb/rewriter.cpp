#include "asmdb/rewriter.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.hpp"

namespace sipre::asmdb
{

RewriteResult
rewriteTrace(const Trace &original, const AsmdbPlan &plan,
             const CodeLayout &layout)
{
    RewriteResult result;
    result.trace.setName(original.name() + "+asmdb");
    result.trace.setSeed(original.seed());
    result.original_dynamic = original.size();
    result.trace.reserve(original.size() + original.size() / 16);

    // Group insertions by site. A ranged (coalesced) prefetch encodes
    // its line count in the low bits of the line-aligned target.
    std::unordered_map<Addr, std::vector<Addr>> by_site;
    for (const Insertion &ins : plan.insertions) {
        by_site[ins.site_pc].push_back(ins.target_line |
                                       Addr{ins.range - 1u});
    }
    for (auto &[site, targets] : by_site)
        std::sort(targets.begin(), targets.end());
    result.inserted_static = plan.insertions.size();

    std::unordered_set<Addr> unique_pcs;
    unique_pcs.reserve(original.size() / 8);

    for (std::size_t i = 0; i < original.size(); ++i) {
        const TraceInstruction &inst = original[i];
        unique_pcs.insert(inst.pc);

        // Prefetches belong to the fallthrough path within the site
        // block: emit them only when control reaches the site's
        // terminating instruction sequentially (a jump directly to the
        // terminator skips block-body code, including our insertion).
        auto site = by_site.find(inst.pc);
        if (site != by_site.end() && i > 0) {
            const TraceInstruction &prev = original[i - 1];
            const bool fallthrough =
                !(prev.isBranch() && prev.taken) &&
                prev.nextPc() == inst.pc;
            if (fallthrough) {
                const Addr base = layout.map(inst.pc) -
                                  4 * site->second.size();
                for (std::size_t k = 0; k < site->second.size(); ++k) {
                    const Addr encoded = site->second[k];
                    TraceInstruction pf;
                    pf.pc = base + 4 * k;
                    pf.cls = InstClass::kSwPrefetch;
                    pf.target = layout.mapLine(encoded & ~Addr{63}) |
                                (encoded & Addr{63});
                    result.trace.append(pf);
                    ++result.inserted_dynamic;
                }
            }
        }

        TraceInstruction moved = inst;
        moved.pc = layout.map(inst.pc);
        if (inst.isBranch() && inst.taken)
            moved.target = layout.map(inst.target);
        result.trace.append(moved);
    }

    result.original_static = unique_pcs.size();
    return result;
}

SwPrefetchTriggers
buildTriggers(const AsmdbPlan &plan)
{
    SwPrefetchTriggers triggers;
    for (const Insertion &ins : plan.insertions) {
        triggers[ins.site_pc].push_back(ins.target_line |
                                        Addr{ins.range - 1u});
    }
    for (auto &[pc, targets] : triggers)
        std::sort(targets.begin(), targets.end());
    return triggers;
}

} // namespace sipre::asmdb
