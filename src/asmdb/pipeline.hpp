/**
 * @file
 * End-to-end AsmDB pipeline, mirroring the paper's methodology:
 * (1) execute and gather information (a profiling simulation),
 * (2) generate a profile (CFG + per-line miss counts),
 * (3) modify the target binary (trace rewriting with address shift),
 * (4) rerun the binary with software instruction prefetching.
 */
#ifndef SIPRE_ASMDB_PIPELINE_HPP
#define SIPRE_ASMDB_PIPELINE_HPP

#include "asmdb/providers.hpp"
#include "asmdb/rewriter.hpp"
#include "core/config.hpp"
#include "core/sim_result.hpp"
#include "trace/trace.hpp"

namespace sipre::asmdb
{

/** Everything produced by one profile-and-plan pass. */
struct AsmdbArtifacts
{
    SimResult profile_run;       ///< baseline run used for profiling
    DistanceDecision decision;   ///< the distance provider's output
    AsmdbPlan plan;
    RewriteResult rewrite;       ///< rewritten trace + bloat numbers
    SwPrefetchTriggers triggers; ///< no-overhead mode trigger map
};

/**
 * Run the full AsmDB pipeline for one workload trace under the given
 * baseline configuration (the profile is gathered on that baseline,
 * like profiling a production machine). Distances come from
 * `params.distance_provider`: `static` reproduces the pre-provider
 * pipeline byte-for-byte, `profile` consults `params.external_profile`
 * (or this pass's own profiling run), and `adaptive` runs three extra
 * evaluation simulations scored by Scenario-2 occupancy.
 */
AsmdbArtifacts runPipeline(const Trace &trace, const SimConfig &config,
                           const AsmdbParams &params = {});

} // namespace sipre::asmdb

#endif // SIPRE_ASMDB_PIPELINE_HPP
