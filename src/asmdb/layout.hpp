/**
 * @file
 * Code-layout remapping after prefetch insertion.
 *
 * Inserting a 4-byte prefetch instruction shifts every subsequent
 * instruction address — the "static code bloat" the paper measures in
 * Fig. 7a — and changes which cache line each instruction lands on,
 * which is why AsmDB can perturb the miss profile it was built from.
 */
#ifndef SIPRE_ASMDB_LAYOUT_HPP
#define SIPRE_ASMDB_LAYOUT_HPP

#include <cstdint>
#include <vector>

#include "asmdb/planner.hpp"
#include "util/types.hpp"

namespace sipre::asmdb
{

/**
 * Maps old-layout addresses to the post-insertion layout. Every
 * insertion site shifts all instructions at or beyond it by 4 bytes
 * (one prefetch instruction per planned insertion at that site).
 */
class CodeLayout
{
  public:
    /** Build from a plan (insertions need not be unique per site). */
    explicit CodeLayout(const AsmdbPlan &plan);

    /** New address of the instruction that was at old_pc. */
    Addr map(Addr old_pc) const;

    /** New address of the line containing old_pc's first instruction. */
    Addr
    mapLine(Addr old_line) const
    {
        return map(old_line) & ~Addr{63};
    }

    /** Number of prefetch instructions inserted before old_pc. */
    std::uint64_t insertionsBefore(Addr old_pc) const;

    /** Total inserted instructions (static). */
    std::uint64_t totalInsertions() const { return sites_.size(); }

  private:
    /** Sorted old-layout addresses of every inserted prefetch. */
    std::vector<Addr> sites_;
};

} // namespace sipre::asmdb

#endif // SIPRE_ASMDB_LAYOUT_HPP
