/**
 * @file
 * Pluggable prefetch-distance providers for the AsmDB pipeline: the
 * policy half of the provider/policy split. A provider examines the
 * profiling pass (CFG, per-line misses, the profile run's statistics,
 * optionally a prior run fed back through the result serialization)
 * and produces a DistanceDecision that the planner's backward
 * traversal honors per target.
 *
 * Three providers ship:
 *  - `static`   — the paper's fixed IPC × miss-latency rule; produces
 *                 plans byte-identical to the pre-provider pipeline.
 *  - `profile`  — distances from a prior simulation's measured IPC,
 *                 L1-I pressure, and Scenario-2 (stalling-head) share,
 *                 with longer distances for the dominant miss lines.
 *  - `adaptive` — a bounded deterministic search over distance
 *                 multipliers, scored by Scenario-2 occupancy from the
 *                 scenario timeline of injected evaluation runs, with
 *                 per-target refinement from residual miss counts.
 */
#ifndef SIPRE_ASMDB_PROVIDERS_HPP
#define SIPRE_ASMDB_PROVIDERS_HPP

#include <functional>
#include <memory>
#include <unordered_map>

#include "asmdb/planner.hpp"

namespace sipre::asmdb
{

/** Everything a provider may consult when deciding distances. */
struct ProviderInputs
{
    const Cfg &cfg;
    /** Per-line L1-I demand misses from this pass's profiling run. */
    const std::unordered_map<Addr, std::uint64_t> &line_misses;
    /** This pass's profiling run (always available). */
    const SimResult &profile_run;
    /** Prior-run feedback for the `profile` provider; may be null. */
    const SimResult *external_profile;
    /** L1-I + L2 + LLC latency: the cost of a full miss, in cycles. */
    Cycle miss_latency;
};

/** One evaluation run's outcome, for the adaptive provider. */
struct ProviderEvalResult
{
    /** Scenario-2 cycles summed over the run's scenario timeline. */
    std::uint64_t scenario2_cycles = 0;
    /** Residual per-line L1-I misses with the candidate plan active. */
    std::unordered_map<Addr, std::uint64_t> line_misses;
};

/**
 * Runs a candidate plan (in no-overhead trigger form, so line
 * addresses stay comparable with the profile) and reports its
 * Scenario-2 occupancy and residual misses. Injected by the pipeline
 * so providers stay simulator-free and testable with fakes.
 */
using ProviderEvaluator =
    std::function<ProviderEvalResult(const AsmdbPlan &)>;

/** The provider interface: one decision per profile-and-plan pass. */
class DistanceProvider
{
  public:
    virtual ~DistanceProvider() = default;

    virtual DistanceProviderKind kind() const = 0;

    /** Canonical knob-value name ("static" / "profile" / "adaptive"). */
    const char *
    name() const
    {
        return distanceProviderName(kind());
    }

    /**
     * Decide the distance band(s) for one plan. Must be deterministic:
     * identical inputs produce an identical decision (the
     * profile-feedback determinism guarantee rests on this).
     */
    virtual DistanceDecision decide(const ProviderInputs &inputs,
                                    const AsmdbParams &params) = 0;
};

/**
 * Factory. The evaluator is only consulted by the adaptive provider;
 * without one, adaptive degrades to the static decision (no evaluation
 * runs available — e.g. a unit test exercising the decision plumbing).
 */
std::unique_ptr<DistanceProvider>
makeDistanceProvider(DistanceProviderKind kind,
                     ProviderEvaluator evaluator = {});

} // namespace sipre::asmdb

#endif // SIPRE_ASMDB_PROVIDERS_HPP
