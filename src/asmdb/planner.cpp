#include "asmdb/planner.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.hpp"

namespace sipre::asmdb
{

namespace
{

/** Backward-traversal work item. */
struct WorkItem
{
    std::uint32_t block;
    std::uint32_t distance; ///< instructions from block end to target
    double prob;            ///< probability the path reaches the target

    bool
    operator<(const WorkItem &other) const
    {
        return prob < other.prob; // explore most likely paths first
    }
};

/** Candidate insertion site discovered by the traversal. */
struct Candidate
{
    std::uint32_t block;
    double prob;
    std::uint64_t expected; ///< exec_count * prob
};

} // namespace

DistanceDecision
staticDecision(double profiled_ipc, Cycle miss_latency,
               const AsmdbParams &params)
{
    DistanceDecision decision;
    decision.min_distance = static_cast<std::uint32_t>(
        std::ceil(std::max(0.1, profiled_ipc) *
                  static_cast<double>(miss_latency)));
    decision.window = static_cast<std::uint32_t>(
        decision.min_distance * std::max(1.0, params.window_mult));
    return decision;
}

AsmdbPlan
buildPlan(const Cfg &cfg,
          const std::unordered_map<Addr, std::uint64_t> &line_misses,
          double profiled_ipc, Cycle llc_latency, const AsmdbParams &params)
{
    return buildPlan(cfg, line_misses,
                     staticDecision(profiled_ipc, llc_latency, params),
                     params);
}

AsmdbPlan
buildPlan(const Cfg &cfg,
          const std::unordered_map<Addr, std::uint64_t> &line_misses,
          const DistanceDecision &decision, const AsmdbParams &params)
{
    AsmdbPlan plan;
    plan.min_distance = decision.min_distance;
    plan.window = decision.window;

    // Rank target lines by miss count.
    std::vector<std::pair<Addr, std::uint64_t>> targets(line_misses.begin(),
                                                        line_misses.end());
    std::sort(targets.begin(), targets.end(),
              [](const auto &a, const auto &b) {
                  return a.second != b.second ? a.second > b.second
                                              : a.first < b.first;
              });
    for (const auto &[line, n] : targets)
        plan.total_misses += n;

    const std::uint64_t coverage_goal = static_cast<std::uint64_t>(
        params.coverage * static_cast<double>(plan.total_misses));

    std::uint64_t covered = 0;
    std::size_t targets_used = 0;

    // Scratch: best probability seen per block during one traversal.
    std::unordered_map<std::uint32_t, double> best_prob;

    for (const auto &[line, miss_count] : targets) {
        if (covered >= coverage_goal ||
            targets_used >= params.max_targets)
            break;
        const std::uint32_t target = cfg.blockForLine(line);
        if (target == Cfg::kNoBlock)
            continue;
        ++targets_used;

        // This target's distance band, possibly provider-tuned.
        const std::uint32_t target_min = decision.distanceFor(line);
        const std::uint32_t target_window = decision.windowFor(line);

        // Backward best-first traversal from the target block.
        best_prob.clear();
        std::priority_queue<WorkItem> queue;
        queue.push(WorkItem{target, 0, 1.0});
        std::vector<Candidate> candidates;
        std::size_t expansions = 0;

        while (!queue.empty() && expansions < 16384) {
            const WorkItem item = queue.top();
            queue.pop();
            ++expansions;

            const CfgBlock &block = cfg.block(item.block);
            if (item.block != target && item.distance >= target_min &&
                item.prob >= params.min_path_prob &&
                block.exec_count > 0) {
                candidates.push_back(Candidate{
                    item.block, item.prob,
                    static_cast<std::uint64_t>(
                        item.prob *
                        static_cast<double>(block.exec_count))});
            }
            if (item.distance >= target_window)
                continue;

            auto visit_pred = [&](std::uint32_t pred_id, double edge_prob,
                                  std::uint32_t extra_distance) {
                const CfgBlock &pred = cfg.block(pred_id);
                if (pred.exec_count == 0)
                    return;
                const double prob = item.prob * std::min(1.0, edge_prob);
                if (prob < params.min_path_prob)
                    return;
                // Distance from the end of pred to the target: the whole
                // of the current block plus anything executed in between
                // (a bypassed callee).
                const std::uint32_t dist =
                    item.distance + block.num_instrs + extra_distance;
                auto it = best_prob.find(pred_id);
                if (it != best_prob.end() && it->second >= prob)
                    return;
                best_prob[pred_id] = prob;
                queue.push(WorkItem{pred_id, dist, prob});
            };

            for (const auto &[pred_id, edge_count] : block.preds) {
                const CfgBlock &pred = cfg.block(pred_id);
                if (pred.exec_count == 0)
                    continue;
                visit_pred(pred_id,
                           static_cast<double>(edge_count) /
                               static_cast<double>(pred.exec_count),
                           0);
            }
            if (block.bypass_pred != Cfg::kNoBlock) {
                // Step over the call: the call site leads here once the
                // callee returns.
                visit_pred(block.bypass_pred, 0.95, block.bypass_len);
            }
        }

        // Greedily pick the highest-probability sites until the
        // expected covered executions reach the per-target goal.
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.expected != b.expected
                                 ? a.expected > b.expected
                                 : a.block < b.block;
                  });
        const auto target_execs = static_cast<std::uint64_t>(
            params.per_target_coverage *
            static_cast<double>(cfg.block(target).exec_count));
        std::uint64_t expected_total = 0;
        std::size_t sites = 0;
        for (const Candidate &cand : candidates) {
            if (sites >= params.max_sites_per_target ||
                expected_total >= target_execs)
                break;
            plan.insertions.push_back(
                Insertion{cfg.block(cand.block).end_pc, line, cand.prob,
                          cand.expected});
            expected_total += cand.expected;
            ++sites;
        }
        if (sites > 0) {
            // Only targets that actually received a prefetch count as
            // covered misses.
            covered += miss_count;
            plan.targeted_misses += miss_count;
        }
    }

    // Sort by site and deduplicate identical (site, target) pairs.
    std::sort(plan.insertions.begin(), plan.insertions.end(),
              [](const Insertion &a, const Insertion &b) {
                  return a.site_pc != b.site_pc
                             ? a.site_pc < b.site_pc
                             : a.target_line < b.target_line;
              });
    plan.insertions.erase(
        std::unique(plan.insertions.begin(), plan.insertions.end(),
                    [](const Insertion &a, const Insertion &b) {
                        return a.site_pc == b.site_pc &&
                               a.target_line == b.target_line;
                    }),
        plan.insertions.end());
    return plan;
}

AsmdbPlan
coalescePlan(const AsmdbPlan &plan, unsigned max_range)
{
    AsmdbPlan out = plan;
    out.insertions.clear();
    // Input is sorted by (site, target); merge adjacent-line runs.
    for (std::size_t i = 0; i < plan.insertions.size();) {
        Insertion merged = plan.insertions[i];
        std::size_t j = i + 1;
        while (j < plan.insertions.size() &&
               plan.insertions[j].site_pc == merged.site_pc &&
               plan.insertions[j].target_line ==
                   merged.target_line + Addr{merged.range} * 64 &&
               merged.range < max_range) {
            ++merged.range;
            merged.expected_covered +=
                plan.insertions[j].expected_covered;
            ++j;
        }
        out.insertions.push_back(merged);
        i = j;
    }
    return out;
}

} // namespace sipre::asmdb
