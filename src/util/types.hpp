/**
 * @file
 * Fundamental scalar type aliases shared by every sipre subsystem.
 */
#ifndef SIPRE_UTIL_TYPES_HPP
#define SIPRE_UTIL_TYPES_HPP

#include <cstdint>

namespace sipre
{

/** A byte address in the simulated (virtual) address space. */
using Addr = std::uint64_t;

/** A simulation cycle count. Cycle 0 is the first simulated cycle. */
using Cycle = std::uint64_t;

/** An opaque identifier for an in-flight memory request. */
using ReqId = std::uint64_t;

/** Sentinel for "no cycle scheduled". */
inline constexpr Cycle kNoCycle = ~Cycle{0};

/** Sentinel for "no address". */
inline constexpr Addr kNoAddr = ~Addr{0};

/** Architectural register identifier; kNoReg means "unused operand". */
using RegId = std::uint8_t;
inline constexpr RegId kNoReg = 0xff;

} // namespace sipre

#endif // SIPRE_UTIL_TYPES_HPP
