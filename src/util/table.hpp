/**
 * @file
 * Text-table and CSV emitters used by the benchmark harness to print
 * the paper's figure/table series.
 */
#ifndef SIPRE_UTIL_TABLE_HPP
#define SIPRE_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace sipre
{

/**
 * A simple column-aligned table builder.
 *
 * Usage: set headers, addRow() repeatedly, then print() / printCsv().
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string fmt(double v, int precision = 3);

    /** Convenience: format a percentage (0.20 -> "20.0%"). */
    static std::string pct(double ratio, int precision = 1);

    /** Emit an aligned, human-readable table. */
    void print(std::ostream &os) const;

    /** Emit RFC-4180-ish CSV (no quoting of commas; keep cells simple). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sipre

#endif // SIPRE_UTIL_TABLE_HPP
