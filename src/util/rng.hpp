/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in sipre flows through Rng (xoshiro256**) seeded via
 * SplitMix64 so that every workload, experiment, and test is exactly
 * reproducible from a 64-bit seed.
 */
#ifndef SIPRE_UTIL_RNG_HPP
#define SIPRE_UTIL_RNG_HPP

#include <array>
#include <cstdint>

#include "util/logging.hpp"

namespace sipre
{

/**
 * xoshiro256** generator with SplitMix64 seeding.
 *
 * Chosen over std::mt19937_64 because its output sequence is fixed by
 * this source file (libstdc++ distributions are not portable), which
 * keeps golden test values stable.
 */
class Rng
{
  public:
    /** Seed the generator; two Rng with equal seeds emit equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SIPRE_ASSERT(bound > 0, "Rng::below requires a positive bound");
        // Lemire-style rejection-free mapping is fine here; modulo bias is
        // negligible for simulation workload generation, but we still use
        // the multiply-shift reduction for speed and uniformity.
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        SIPRE_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish draw: number of successes before failure, capped.
     * Useful for loop trip counts and burst lengths.
     */
    std::uint64_t
    geometric(double p_continue, std::uint64_t cap)
    {
        std::uint64_t n = 0;
        while (n < cap && chance(p_continue))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace sipre

#endif // SIPRE_UTIL_RNG_HPP
