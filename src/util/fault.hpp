/**
 * @file
 * Deterministic, seedable fault injection for the service stack.
 *
 * The paper's methodological point — conclusions drawn on an optimistic
 * baseline invert under realistic conditions — applies to our own
 * infrastructure too: sipre_served/sipre_jobs must be characterized
 * under hostile clients, failing disks, and crashing processes, not
 * just the happy path. This framework provides named injection points
 * (sites) threaded through the fragile boundaries (socket I/O, fsync /
 * rename persistence, engine and shard execution) that tests and the
 * daemon enable via `--faults` or the SIPRE_FAULTS environment
 * variable.
 *
 * Grammar (comma-separated entries):
 *
 *   SIPRE_FAULTS="recv:err=0.01,write:short=0.05,fsync:fail=after:3,
 *                 engine:delay=50ms,seed=42"
 *
 *   <site>:err=P        each operation fails with probability P
 *   <site>:short=P      each read/write is truncated with probability P
 *   <site>:fail=after:N operations after the first N all fail
 *   <site>:delay=Dms    every operation is delayed by D milliseconds
 *   seed=N              seeds the probability draws (deterministic)
 *
 * Sites: recv, send (alias: write), fsync, rename, engine, shard,
 * connect, peer.
 *
 * With no spec configured the framework is a single relaxed atomic
 * load per hook — near-zero overhead, no locks, no allocation (see
 * bench/bench_fault_overhead).
 */
#ifndef SIPRE_UTIL_FAULT_HPP
#define SIPRE_UTIL_FAULT_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace sipre::fault
{

/** Named injection points. Keep siteName()/parseSite() in sync. */
enum class Site : std::uint8_t {
    kRecv,   ///< socket reads (server connections and client helpers)
    kSend,   ///< socket writes (http::sendAll); alias "write"
    kFsync,  ///< file/directory fsync in the durable-commit path
    kRename, ///< the atomic-publish rename in the durable-commit path
    kEngine, ///< simulation execution inside the engine workers
    kShard,  ///< shard execution in the job manager's executors
    kConnect,///< outbound TCP connects (http::dialTcp)
    kPeer,   ///< per-candidate peer proxying in the cluster tier
};
inline constexpr std::size_t kSiteCount = 8;

const char *siteName(Site site);
bool parseSite(std::string_view token, Site &site);

/** Per-site fault programming, as parsed from the spec. */
struct SiteRule
{
    double err_p = 0.0;            ///< P(operation fails)
    double short_p = 0.0;          ///< P(read/write truncated)
    std::uint64_t fail_after = 0;  ///< >0: ops beyond the Nth fail
    bool fail_after_set = false;
    std::uint64_t delay_ms = 0;    ///< fixed delay per operation

    bool
    active() const
    {
        return err_p > 0.0 || short_p > 0.0 || fail_after_set ||
               delay_ms > 0;
    }
};

/** What a hook should do for the current operation. */
struct Decision
{
    bool fail = false;         ///< make the operation error out
    bool shorten = false;      ///< truncate the read/write
    std::uint64_t delay_ms = 0; ///< sleep this long first

    explicit operator bool() const
    {
        return fail || shorten || delay_ms > 0;
    }
};

/**
 * The process-wide injector. Thread-safe. Disabled (the default) it
 * costs one relaxed atomic load per hook; configured, each decision
 * takes a short critical section so the op counters and the seeded
 * RNG stream stay coherent across threads.
 */
class Injector
{
  public:
    /**
     * The global instance. On first use it self-configures from the
     * SIPRE_FAULTS environment variable (a malformed value warns on
     * stderr and leaves injection disabled).
     */
    static Injector &global();

    /**
     * (Re)program the injector. An empty spec disables injection and
     * clears all rules and counters. Returns false (with `error`, when
     * given) on a malformed spec, leaving the previous configuration
     * in place.
     */
    bool configure(std::string_view spec, std::string *error = nullptr);

    /** Fast path for hooks: no faults configured at all. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Evaluate the rule for `site` against this operation (counting
     * it). Meaningful only when enabled(); prefer fault::at().
     */
    Decision decide(Site site);

    /** Faults injected at `site` so far (any action). */
    std::uint64_t injected(Site site) const;

    /** Faults injected across all sites. */
    std::uint64_t injectedTotal() const;

    /** Operations that consulted `site` (injected or not). */
    std::uint64_t operations(Site site) const;

    /**
     * Prometheus-style text: sipre_faults_injected_total and
     * sipre_fault_ops_total, one labeled series per active site.
     * Empty when injection is disabled and nothing was ever injected.
     */
    std::string metricsText() const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::array<SiteRule, kSiteCount> rules_{};
    std::array<std::uint64_t, kSiteCount> ops_{};
    std::array<std::uint64_t, kSiteCount> injected_{};
    Rng rng_;
};

/**
 * The hook every injection point calls. Compiles to a relaxed atomic
 * load and a branch when no faults are configured.
 */
inline Decision
at(Site site)
{
    Injector &injector = Injector::global();
    if (!injector.enabled())
        return Decision{};
    return injector.decide(site);
}

/** Sleep helper for Decision::delay_ms (no-op on zero). */
void applyDelay(const Decision &decision);

/**
 * Parse a spec into per-site rules + seed without touching the global
 * injector (exposed for tests and tooling diagnostics).
 */
bool parseSpec(std::string_view spec,
               std::array<SiteRule, kSiteCount> &rules,
               std::uint64_t &seed, std::string &error);

} // namespace sipre::fault

#endif // SIPRE_UTIL_FAULT_HPP
