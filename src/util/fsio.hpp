/**
 * @file
 * Crash-durable file publication: fsync the temp file, rename it over
 * the target, fsync the containing directory. A bare rename makes the
 * replacement *atomic* but not *durable* — after a power cut the
 * directory entry (or the file's own bytes) may not have reached the
 * disk, silently rolling a checkpoint back. Every step is wrapped by
 * the fault-injection sites `fsync` and `rename`, so chaos tests can
 * prove callers survive a disk that starts failing mid-run.
 */
#ifndef SIPRE_UTIL_FSIO_HPP
#define SIPRE_UTIL_FSIO_HPP

#include <string>

namespace sipre::fsio
{

/** fsync the file at `path`. False (with `error`) on failure. */
bool syncFile(const std::string &path, std::string *error = nullptr);

/** fsync the directory containing `path` (its parent, or "."). */
bool syncParentDir(const std::string &path,
                   std::string *error = nullptr);

/**
 * Durably publish `tmp` as `path` (same directory): fsync(tmp) →
 * rename(tmp, path) → fsync(parent dir). On any failure the temp file
 * is removed (when it still exists) and false is returned with
 * `error`; the previous contents of `path`, if any, are untouched
 * unless the rename itself succeeded.
 */
bool commitFile(const std::string &tmp, const std::string &path,
                std::string *error = nullptr);

} // namespace sipre::fsio

#endif // SIPRE_UTIL_FSIO_HPP
