/**
 * @file
 * Saturating counters used throughout the branch predictors.
 */
#ifndef SIPRE_UTIL_SAT_COUNTER_HPP
#define SIPRE_UTIL_SAT_COUNTER_HPP

#include <cstdint>

#include "util/logging.hpp"

namespace sipre
{

/**
 * Unsigned saturating counter with a configurable bit width.
 *
 * The counter saturates at [0, 2^bits - 1]. taken() is true in the upper
 * half of the range, matching the usual 2-bit-counter convention.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : max_((1u << bits) - 1), value_(initial)
    {
        SIPRE_ASSERT(bits >= 1 && bits <= 16, "counter width out of range");
        SIPRE_ASSERT(initial <= max_, "initial value exceeds saturation");
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Update toward taken/not-taken. */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    /** Predicted direction: true when in the upper half of the range. */
    bool taken() const { return value_ > max_ / 2; }

    /** True when fully saturated in either direction. */
    bool saturated() const { return value_ == 0 || value_ == max_; }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }

    /** Force a value (used to bias initial predictor state). */
    void
    set(unsigned v)
    {
        SIPRE_ASSERT(v <= max_, "SatCounter::set beyond saturation");
        value_ = v;
    }

  private:
    unsigned max_;
    unsigned value_;
};

/**
 * Signed saturating counter (e.g.\ perceptron weights).
 *
 * Saturates at [-2^(bits-1), 2^(bits-1) - 1].
 */
class SignedSatCounter
{
  public:
    explicit SignedSatCounter(unsigned bits = 8, int initial = 0)
        : min_(-(1 << (bits - 1))), max_((1 << (bits - 1)) - 1),
          value_(initial)
    {
        SIPRE_ASSERT(bits >= 2 && bits <= 16, "counter width out of range");
        SIPRE_ASSERT(initial >= min_ && initial <= max_,
                     "initial value outside saturation range");
    }

    void
    add(int delta)
    {
        long v = static_cast<long>(value_) + delta;
        if (v > max_)
            v = max_;
        if (v < min_)
            v = min_;
        value_ = static_cast<int>(v);
    }

    /** Move one step toward positive (taken) or negative (not taken). */
    void
    update(bool toward_positive)
    {
        add(toward_positive ? 1 : -1);
    }

    int value() const { return value_; }
    int min() const { return min_; }
    int max() const { return max_; }
    bool saturated() const { return value_ == min_ || value_ == max_; }

  private:
    int min_;
    int max_;
    int value_;
};

} // namespace sipre

#endif // SIPRE_UTIL_SAT_COUNTER_HPP
