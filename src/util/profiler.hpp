/**
 * @file
 * Lightweight per-component cycle-cost profiling: attributes the
 * simulator's wall-clock time to the component ticks that consume it
 * (front-end = FTQ/fetch/branch, back-end = decode/issue/retire, each
 * cache level, DRAM, the metadata preloader).
 *
 * Design contract (mirrors trace_obs/recorder.hpp and util/fault):
 *  - Disabled is the default and costs one relaxed atomic load per
 *    ProfScope construction — no clock read, no allocation.
 *    bench/bench_profile_overhead puts a number on it.
 *  - Armed process-wide (the `--profile` flag on sipre_cli or the
 *    SIPRE_PROFILE environment variable); accumulation is per-Simulator
 *    so concurrent shards never contend on shared counters.
 *  - Scopes are per-component-per-cycle, not per-event: the profile
 *    answers "where do busy cycles go" (EXPERIMENTS.md), not "what did
 *    request 4711 do" (that is trace_obs territory).
 */
#ifndef SIPRE_UTIL_PROFILER_HPP
#define SIPRE_UTIL_PROFILER_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sipre
{

/** The components wall-clock time is attributed to. */
enum class ProfComponent : std::uint8_t {
    kFrontend = 0, ///< FTQ allocate/issue/deliver + branch prediction
    kBackend,      ///< decode/dispatch, scheduler issue, retire
    kL1i,
    kL1d,
    kL2,
    kLlc,
    kDram,
    kPreloader,
    kCount
};

/** Stable short name for reports ("frontend", "l1i", ...). */
const char *profComponentName(ProfComponent c);

/**
 * The process-wide arm switch. Accumulation state lives in per-run
 * ProfileAccumulators; this only gates whether scopes read the clock.
 */
class CycleProfiler
{
  public:
    /** The singleton; first call applies SIPRE_PROFILE if set. */
    static CycleProfiler &global();

    /** Hot-path gate: one relaxed atomic load. */
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    void enable() { enabled_.store(true, std::memory_order_relaxed); }
    void disable() { enabled_.store(false, std::memory_order_relaxed); }

  private:
    CycleProfiler();
    std::atomic<bool> enabled_{false};
};

/** Per-run accumulation: total ns and tick count per component. */
struct ProfileAccumulator
{
    struct Slot
    {
        std::uint64_t ns = 0;
        std::uint64_t ticks = 0;
    };
    std::array<Slot, static_cast<std::size_t>(ProfComponent::kCount)> slots;

    const Slot &
    operator[](ProfComponent c) const
    {
        return slots[static_cast<std::size_t>(c)];
    }

    void clear() { slots.fill(Slot{}); }

    std::uint64_t
    totalNs() const
    {
        std::uint64_t total = 0;
        for (const Slot &s : slots)
            total += s.ns;
        return total;
    }

    /**
     * Human-readable table: one line per component with total ms, tick
     * count, ns/tick, and share of the profiled total. `cycles`, when
     * non-zero, adds an ns/cycle column (the EXPERIMENTS.md metric).
     */
    std::string table(std::uint64_t cycles = 0) const;

    /** One-line JSON object ({"frontend_ns":..., ...}). */
    std::string json() const;
};

/**
 * RAII scope attributing the enclosed wall-clock to one component of
 * one accumulator. Inert (no clock read) when the profiler is disabled
 * at construction or the accumulator is null.
 */
class ProfScope
{
  public:
    ProfScope(ProfileAccumulator *acc, ProfComponent c)
    {
        if (acc != nullptr && CycleProfiler::global().enabled()) {
            acc_ = acc;
            comp_ = c;
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~ProfScope()
    {
        if (acc_ != nullptr) {
            const auto end = std::chrono::steady_clock::now();
            ProfileAccumulator::Slot &slot =
                acc_->slots[static_cast<std::size_t>(comp_)];
            slot.ns += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - start_)
                    .count());
            ++slot.ticks;
        }
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    ProfileAccumulator *acc_ = nullptr;
    ProfComponent comp_ = ProfComponent::kFrontend;
    std::chrono::steady_clock::time_point start_;
};

} // namespace sipre

#endif // SIPRE_UTIL_PROFILER_HPP
