/**
 * @file
 * Rendezvous (highest-random-weight) hashing for the cluster tier:
 * every node independently scores (key, node) pairs and the owner of a
 * key is the highest-scoring live node. Unlike a ring, HRW needs no
 * shared state beyond the member list, distributes keys evenly, and is
 * minimally disruptive — removing a node remaps only the keys that
 * node owned, never keys between two surviving nodes.
 */
#ifndef SIPRE_UTIL_RENDEZVOUS_HPP
#define SIPRE_UTIL_RENDEZVOUS_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sipre
{

/**
 * Deterministic 64-bit score of (key, node). FNV-1a over both strings
 * (with a separator so "ab"+"c" and "a"+"bc" differ) finished with a
 * splitmix64 avalanche, so near-identical node names still produce
 * decorrelated score streams.
 */
inline std::uint64_t
rendezvousScore(std::string_view key, std::string_view node)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::string_view s) {
        for (const char c : s) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ULL;
        }
    };
    mix(key);
    h ^= 0x1f;
    h *= 0x100000001b3ULL;
    mix(node);
    // splitmix64 finalizer
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

/**
 * The member list ranked for `key`, best owner first. Ties (only
 * possible with duplicate names) break lexicographically so every node
 * computes the identical order.
 */
inline std::vector<std::string>
rendezvousRank(std::string_view key, const std::vector<std::string> &nodes)
{
    std::vector<std::string> ranked = nodes;
    std::sort(ranked.begin(), ranked.end(),
              [key](const std::string &a, const std::string &b) {
                  const std::uint64_t sa = rendezvousScore(key, a);
                  const std::uint64_t sb = rendezvousScore(key, b);
                  return sa != sb ? sa > sb : a < b;
              });
    return ranked;
}

/** The best-ranked node for `key`; empty when `nodes` is empty. */
inline std::string
rendezvousOwner(std::string_view key, const std::vector<std::string> &nodes)
{
    std::string owner;
    std::uint64_t best = 0;
    for (const std::string &node : nodes) {
        const std::uint64_t score = rendezvousScore(key, node);
        if (owner.empty() || score > best ||
            (score == best && node < owner)) {
            owner = node;
            best = score;
        }
    }
    return owner;
}

} // namespace sipre

#endif // SIPRE_UTIL_RENDEZVOUS_HPP
