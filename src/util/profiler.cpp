#include "util/profiler.hpp"

#include <cstdio>
#include <cstdlib>

namespace sipre
{

const char *
profComponentName(ProfComponent c)
{
    switch (c) {
      case ProfComponent::kFrontend:
        return "frontend";
      case ProfComponent::kBackend:
        return "backend";
      case ProfComponent::kL1i:
        return "l1i";
      case ProfComponent::kL1d:
        return "l1d";
      case ProfComponent::kL2:
        return "l2";
      case ProfComponent::kLlc:
        return "llc";
      case ProfComponent::kDram:
        return "dram";
      case ProfComponent::kPreloader:
        return "preloader";
      default:
        return "unknown";
    }
}

CycleProfiler::CycleProfiler()
{
    if (const char *env = std::getenv("SIPRE_PROFILE")) {
        if (env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
            enabled_.store(true, std::memory_order_relaxed);
    }
}

CycleProfiler &
CycleProfiler::global()
{
    static CycleProfiler instance;
    return instance;
}

std::string
ProfileAccumulator::table(std::uint64_t cycles) const
{
    const std::uint64_t total = totalNs();
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line), "%-10s %12s %12s %9s %7s",
                  "component", "total_ms", "ticks", "ns/tick", "share");
    out += line;
    if (cycles != 0) {
        std::snprintf(line, sizeof(line), " %9s", "ns/cycle");
        out += line;
    }
    out += '\n';
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const Slot &s = slots[i];
        if (s.ticks == 0)
            continue;
        const double ms = static_cast<double>(s.ns) / 1e6;
        const double per_tick =
            static_cast<double>(s.ns) / static_cast<double>(s.ticks);
        const double share =
            total != 0
                ? 100.0 * static_cast<double>(s.ns) /
                      static_cast<double>(total)
                : 0.0;
        std::snprintf(line, sizeof(line),
                      "%-10s %12.2f %12llu %9.1f %6.1f%%",
                      profComponentName(static_cast<ProfComponent>(i)), ms,
                      static_cast<unsigned long long>(s.ticks), per_tick,
                      share);
        out += line;
        if (cycles != 0) {
            std::snprintf(line, sizeof(line), " %9.1f",
                          static_cast<double>(s.ns) /
                              static_cast<double>(cycles));
            out += line;
        }
        out += '\n';
    }
    return out;
}

std::string
ProfileAccumulator::json() const
{
    std::string out = "{";
    bool first = true;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const Slot &s = slots[i];
        if (!first)
            out += ",";
        first = false;
        out += '"';
        out += profComponentName(static_cast<ProfComponent>(i));
        out += "_ns\":";
        out += std::to_string(s.ns);
    }
    out += "}";
    return out;
}

} // namespace sipre
