/**
 * @file
 * Open-addressing hash map from 64-bit keys to small values, built for
 * the simulator's hot paths (in-flight request ids, pending branches,
 * in-flight line de-duplication). Compared to std::unordered_map it
 * allocates no per-node memory — one flat key array and one flat value
 * array, grown by doubling — so steady-state insert/erase churn in the
 * tick path touches only memory the map already owns.
 *
 * Constraints that keep it simple and fast:
 *  - The all-ones key (~0) is reserved as the empty sentinel. All
 *    current users store request ids (start at 1), trace indices
 *    (bounded by trace size) or 64-byte-aligned line addresses, none of
 *    which can be ~0.
 *  - Deletion uses backward-shift (no tombstones), so lookups never
 *    degrade as the map churns.
 *  - Iteration order is unspecified; callers must not depend on it.
 */
#ifndef SIPRE_UTIL_FLAT_MAP_HPP
#define SIPRE_UTIL_FLAT_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace sipre
{

/** See file comment. V must be movable. */
template <typename V>
class FlatMap
{
  public:
    /** Key value that can never be stored. */
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    explicit FlatMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        keys_.assign(cap, kEmptyKey);
        values_.resize(cap);
        mask_ = cap - 1;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Pointer to the value for key, or nullptr when absent. */
    V *
    find(std::uint64_t key)
    {
        std::size_t i = slotOf(key);
        return keys_[i] == key ? &values_[i] : nullptr;
    }

    const V *
    find(std::uint64_t key) const
    {
        std::size_t i = slotOf(key);
        return keys_[i] == key ? &values_[i] : nullptr;
    }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /**
     * Insert key -> value, overwriting any existing entry. Returns a
     * reference to the stored value (invalidated by the next mutation).
     */
    V &
    insert(std::uint64_t key, V value)
    {
        SIPRE_ASSERT(key != kEmptyKey, "FlatMap cannot store ~0 as a key");
        if ((size_ + 1) * 4 > (mask_ + 1) * 3)
            grow();
        std::size_t i = slotOf(key);
        if (keys_[i] != key) {
            keys_[i] = key;
            ++size_;
        }
        values_[i] = std::move(value);
        return values_[i];
    }

    /** Value for key, default-constructing an entry when absent. */
    V &
    operator[](std::uint64_t key)
    {
        SIPRE_ASSERT(key != kEmptyKey, "FlatMap cannot store ~0 as a key");
        if ((size_ + 1) * 4 > (mask_ + 1) * 3)
            grow();
        std::size_t i = slotOf(key);
        if (keys_[i] != key) {
            keys_[i] = key;
            values_[i] = V{};
            ++size_;
        }
        return values_[i];
    }

    /** Remove key if present; returns true when an entry was removed. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = slotOf(key);
        if (keys_[i] != key)
            return false;
        --size_;
        // Backward-shift deletion: walk the probe chain after i and pull
        // back any element whose home slot cannot reach it once i is
        // emptied, so probes never need tombstones.
        std::size_t j = i;
        while (true) {
            keys_[i] = kEmptyKey;
            while (true) {
                j = (j + 1) & mask_;
                if (keys_[j] == kEmptyKey)
                    return true;
                const std::size_t home = homeOf(keys_[j]);
                const bool stays = i <= j ? (i < home && home <= j)
                                          : (i < home || home <= j);
                if (!stays)
                    break;
            }
            keys_[i] = keys_[j];
            values_[i] = std::move(values_[j]);
            i = j;
        }
    }

    /** Drop every entry; keeps the current capacity. */
    void
    clear()
    {
        std::fill(keys_.begin(), keys_.end(), kEmptyKey);
        size_ = 0;
    }

  private:
    std::size_t homeOf(std::uint64_t key) const
    {
        return static_cast<std::size_t>(mix64(key)) & mask_;
    }

    /** Slot holding key, or the empty slot where it would be inserted. */
    std::size_t
    slotOf(std::uint64_t key) const
    {
        std::size_t i = homeOf(key);
        while (keys_[i] != key && keys_[i] != kEmptyKey)
            i = (i + 1) & mask_;
        return i;
    }

    void
    grow()
    {
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<V> old_values = std::move(values_);
        const std::size_t cap = (mask_ + 1) * 2;
        keys_.assign(cap, kEmptyKey);
        values_.clear();
        values_.resize(cap);
        mask_ = cap - 1;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] == kEmptyKey)
                continue;
            std::size_t j = homeOf(old_keys[i]);
            while (keys_[j] != kEmptyKey)
                j = (j + 1) & mask_;
            keys_[j] = old_keys[i];
            values_[j] = std::move(old_values[i]);
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<V> values_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace sipre

#endif // SIPRE_UTIL_FLAT_MAP_HPP
