#include "util/fault.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace sipre::fault
{

const char *
siteName(Site site)
{
    switch (site) {
    case Site::kRecv: return "recv";
    case Site::kSend: return "send";
    case Site::kFsync: return "fsync";
    case Site::kRename: return "rename";
    case Site::kEngine: return "engine";
    case Site::kShard: return "shard";
    case Site::kConnect: return "connect";
    case Site::kPeer: return "peer";
    }
    return "unknown";
}

bool
parseSite(std::string_view token, Site &site)
{
    if (token == "recv") {
        site = Site::kRecv;
    } else if (token == "send" || token == "write") {
        site = Site::kSend;
    } else if (token == "fsync") {
        site = Site::kFsync;
    } else if (token == "rename") {
        site = Site::kRename;
    } else if (token == "engine") {
        site = Site::kEngine;
    } else if (token == "shard") {
        site = Site::kShard;
    } else if (token == "connect") {
        site = Site::kConnect;
    } else if (token == "peer") {
        site = Site::kPeer;
    } else {
        return false;
    }
    return true;
}

namespace
{

bool
parseDouble(std::string_view text, double &out)
{
    const char *end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, out);
    return ec == std::errc{} && ptr == end;
}

bool
parseUint(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    const char *end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, out);
    return ec == std::errc{} && ptr == end;
}

/** "50ms" or bare "50" — milliseconds either way. */
bool
parseDelayMs(std::string_view text, std::uint64_t &out)
{
    if (text.size() > 2 && text.substr(text.size() - 2) == "ms")
        text.remove_suffix(2);
    return parseUint(text, out);
}

bool
applyEntry(std::string_view entry,
           std::array<SiteRule, kSiteCount> &rules, std::uint64_t &seed,
           std::string &error)
{
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
        error = "entry '" + std::string(entry) + "' has no '='";
        return false;
    }
    const std::string_view lhs = entry.substr(0, eq);
    const std::string_view value = entry.substr(eq + 1);

    if (lhs == "seed") {
        if (!parseUint(value, seed)) {
            error = "bad seed '" + std::string(value) + "'";
            return false;
        }
        return true;
    }

    const std::size_t colon = lhs.find(':');
    if (colon == std::string_view::npos) {
        error = "entry '" + std::string(entry) +
                "' is not <site>:<action>=<value> or seed=N";
        return false;
    }
    Site site;
    if (!parseSite(lhs.substr(0, colon), site)) {
        error = "unknown fault site '" +
                std::string(lhs.substr(0, colon)) + "'";
        return false;
    }
    const std::string_view action = lhs.substr(colon + 1);
    SiteRule &rule = rules[static_cast<std::size_t>(site)];

    if (action == "err" || action == "short") {
        double p = 0.0;
        if (!parseDouble(value, p) || p < 0.0 || p > 1.0) {
            error = "bad probability '" + std::string(value) + "' for " +
                    std::string(lhs);
            return false;
        }
        (action == "err" ? rule.err_p : rule.short_p) = p;
        return true;
    }
    if (action == "fail") {
        constexpr std::string_view kAfter = "after:";
        if (value.rfind(kAfter, 0) != 0 ||
            !parseUint(value.substr(kAfter.size()), rule.fail_after)) {
            error = "bad value '" + std::string(value) +
                    "' for fail (expected after:N)";
            return false;
        }
        rule.fail_after_set = true;
        return true;
    }
    if (action == "delay") {
        if (!parseDelayMs(value, rule.delay_ms)) {
            error = "bad delay '" + std::string(value) +
                    "' (expected e.g. 50ms)";
            return false;
        }
        return true;
    }
    error = "unknown fault action '" + std::string(action) + "'";
    return false;
}

} // namespace

bool
parseSpec(std::string_view spec, std::array<SiteRule, kSiteCount> &rules,
          std::uint64_t &seed, std::string &error)
{
    rules = {};
    while (!spec.empty()) {
        const std::size_t comma = spec.find(',');
        const std::string_view entry = spec.substr(0, comma);
        if (!entry.empty() && !applyEntry(entry, rules, seed, error))
            return false;
        if (comma == std::string_view::npos)
            break;
        spec.remove_prefix(comma + 1);
    }
    return true;
}

Injector &
Injector::global()
{
    static Injector instance;
    static std::once_flag env_once;
    std::call_once(env_once, [] {
        const char *env = std::getenv("SIPRE_FAULTS");
        if (env == nullptr || *env == '\0')
            return;
        std::string error;
        if (!instance.configure(env, &error))
            std::fprintf(stderr,
                         "[sipre] warning: ignoring bad SIPRE_FAULTS "
                         "'%s': %s\n",
                         env, error.c_str());
    });
    return instance;
}

bool
Injector::configure(std::string_view spec, std::string *error)
{
    std::array<SiteRule, kSiteCount> rules{};
    std::uint64_t seed = 0x5eed5eed5eed5eedULL;
    std::string parse_error;
    if (!parseSpec(spec, rules, seed, parse_error)) {
        if (error)
            *error = parse_error;
        return false;
    }
    bool any = false;
    for (const SiteRule &rule : rules)
        any = any || rule.active();

    std::lock_guard<std::mutex> lock(mutex_);
    rules_ = rules;
    ops_ = {};
    injected_ = {};
    rng_ = Rng(seed);
    enabled_.store(any, std::memory_order_relaxed);
    return true;
}

Decision
Injector::decide(Site site)
{
    const auto index = static_cast<std::size_t>(site);
    std::lock_guard<std::mutex> lock(mutex_);
    const SiteRule &rule = rules_[index];
    ++ops_[index];

    Decision decision;
    decision.delay_ms = rule.delay_ms;
    if (rule.fail_after_set && ops_[index] > rule.fail_after)
        decision.fail = true;
    else if (rule.err_p > 0.0 && rng_.chance(rule.err_p))
        decision.fail = true;
    else if (rule.short_p > 0.0 && rng_.chance(rule.short_p))
        decision.shorten = true;
    if (decision)
        ++injected_[index];
    return decision;
}

std::uint64_t
Injector::injected(Site site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return injected_[static_cast<std::size_t>(site)];
}

std::uint64_t
Injector::injectedTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const std::uint64_t count : injected_)
        total += count;
    return total;
}

std::uint64_t
Injector::operations(Site site) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ops_[static_cast<std::size_t>(site)];
}

std::string
Injector::metricsText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    bool any = enabled_.load(std::memory_order_relaxed);
    for (const std::uint64_t count : injected_)
        any = any || count > 0;
    if (!any)
        return {};

    std::ostringstream body;
    body << "# TYPE sipre_faults_injected_total counter\n";
    for (std::size_t i = 0; i < kSiteCount; ++i)
        body << "sipre_faults_injected_total{site=\""
             << siteName(static_cast<Site>(i)) << "\"} " << injected_[i]
             << "\n";
    body << "# TYPE sipre_fault_ops_total counter\n";
    for (std::size_t i = 0; i < kSiteCount; ++i)
        body << "sipre_fault_ops_total{site=\""
             << siteName(static_cast<Site>(i)) << "\"} " << ops_[i]
             << "\n";
    return body.str();
}

void
applyDelay(const Decision &decision)
{
    if (decision.delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(decision.delay_ms));
}

} // namespace sipre::fault
