#include "util/fsio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "util/fault.hpp"

namespace sipre::fsio
{

namespace
{

void
setError(std::string *error, const char *what, const std::string &path)
{
    if (error)
        *error = std::string(what) + " " + path + ": " +
                 std::strerror(errno);
}

/** Open `path` read-only, fsync, close — with the fsync fault hook. */
bool
syncPath(const std::string &path, std::string *error)
{
    if (const fault::Decision d = fault::at(fault::Site::kFsync)) {
        fault::applyDelay(d);
        if (d.fail) {
            errno = EIO;
            setError(error, "fsync (injected)", path);
            return false;
        }
    }
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, "open", path);
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    if (!ok)
        setError(error, "fsync", path);
    ::close(fd);
    return ok;
}

} // namespace

bool
syncFile(const std::string &path, std::string *error)
{
    return syncPath(path, error);
}

bool
syncParentDir(const std::string &path, std::string *error)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    return syncPath(parent.empty() ? "." : parent.string(), error);
}

bool
commitFile(const std::string &tmp, const std::string &path,
           std::string *error)
{
    if (!syncFile(tmp, error)) {
        std::remove(tmp.c_str());
        return false;
    }

    if (const fault::Decision d = fault::at(fault::Site::kRename)) {
        fault::applyDelay(d);
        if (d.fail) {
            errno = EIO;
            setError(error, "rename (injected)", path);
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "rename", path);
        std::remove(tmp.c_str());
        return false;
    }

    // The rename landed; a directory-fsync failure still means the
    // publication may not survive a crash, so report it.
    return syncParentDir(path, error);
}

} // namespace sipre::fsio
