/**
 * @file
 * Small bit-manipulation helpers (masks, log2, address hashing).
 */
#ifndef SIPRE_UTIL_BITS_HPP
#define SIPRE_UTIL_BITS_HPP

#include <bit>
#include <cstdint>

#include "util/logging.hpp"

namespace sipre
{

/** True when v is a power of two (v > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor log2 of a power-of-two value. */
inline unsigned
log2Exact(std::uint64_t v)
{
    SIPRE_ASSERT(isPowerOfTwo(v), "log2Exact requires a power of two");
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Mask covering the low n bits. n may be 0..64. */
constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [lo, lo+len) of v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned len)
{
    return (v >> lo) & lowMask(len);
}

/**
 * Cheap 64-bit mix function (xorshift-multiply), used to index hashed
 * predictor tables. Not cryptographic; just well distributed.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Fold a 64-bit value down to n bits by xoring n-bit chunks together. */
inline std::uint64_t
foldBits(std::uint64_t v, unsigned n)
{
    SIPRE_ASSERT(n >= 1 && n <= 63, "foldBits width out of range");
    std::uint64_t out = 0;
    while (v != 0) {
        out ^= v & lowMask(n);
        v >>= n;
    }
    return out;
}

} // namespace sipre

#endif // SIPRE_UTIL_BITS_HPP
