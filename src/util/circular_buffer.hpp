/**
 * @file
 * Fixed-capacity circular FIFO used for the FTQ, ROB, and queues.
 */
#ifndef SIPRE_UTIL_CIRCULAR_BUFFER_HPP
#define SIPRE_UTIL_CIRCULAR_BUFFER_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace sipre
{

/**
 * A bounded ring buffer with stable in-queue indexing.
 *
 * Elements are addressed by *logical position*: at(0) is the oldest
 * (head) element, at(size()-1) the youngest. Positions shift as elements
 * are popped, mirroring how an FTQ or ROB is usually described.
 */
template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(std::size_t capacity)
        : slots_(capacity), capacity_(capacity)
    {
        SIPRE_ASSERT(capacity > 0, "CircularBuffer needs capacity > 0");
    }

    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == capacity_; }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return capacity_; }

    /** Free slots remaining. */
    std::size_t space() const { return capacity_ - count_; }

    /** Append a new youngest element. @pre !full(). */
    T &
    push(T value)
    {
        SIPRE_ASSERT(!full(), "push into a full CircularBuffer");
        const std::size_t idx = physical(count_);
        slots_[idx] = std::move(value);
        ++count_;
        return slots_[idx];
    }

    /** Construct a new youngest element in place. @pre !full(). */
    template <typename... Args>
    T &
    emplace(Args &&...args)
    {
        SIPRE_ASSERT(!full(), "emplace into a full CircularBuffer");
        const std::size_t idx = physical(count_);
        slots_[idx] = T(std::forward<Args>(args)...);
        ++count_;
        return slots_[idx];
    }

    /** Remove and return the oldest element. @pre !empty(). */
    T
    pop()
    {
        SIPRE_ASSERT(!empty(), "pop from an empty CircularBuffer");
        T value = std::move(slots_[head_]);
        head_ = (head_ + 1) % capacity_;
        --count_;
        return value;
    }

    /** Oldest element. @pre !empty(). */
    T &
    front()
    {
        SIPRE_ASSERT(!empty(), "front of an empty CircularBuffer");
        return slots_[head_];
    }

    const T &
    front() const
    {
        SIPRE_ASSERT(!empty(), "front of an empty CircularBuffer");
        return slots_[head_];
    }

    /** Youngest element. @pre !empty(). */
    T &
    back()
    {
        SIPRE_ASSERT(!empty(), "back of an empty CircularBuffer");
        return slots_[physical(count_ - 1)];
    }

    /** Logical indexing: at(0) == front(). @pre pos < size(). */
    T &
    at(std::size_t pos)
    {
        SIPRE_ASSERT(pos < count_, "CircularBuffer::at out of range");
        return slots_[physical(pos)];
    }

    const T &
    at(std::size_t pos) const
    {
        SIPRE_ASSERT(pos < count_, "CircularBuffer::at out of range");
        return slots_[physical(pos)];
    }

    /** Drop the youngest n elements (used for squash). @pre n <= size(). */
    void
    truncate(std::size_t n)
    {
        SIPRE_ASSERT(n <= count_, "CircularBuffer::truncate out of range");
        count_ -= n;
    }

    /** Remove all elements. */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::size_t
    physical(std::size_t logical) const
    {
        return (head_ + logical) % capacity_;
    }

    std::vector<T> slots_;
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace sipre

#endif // SIPRE_UTIL_CIRCULAR_BUFFER_HPP
