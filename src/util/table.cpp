#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hpp"

namespace sipre
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    SIPRE_ASSERT(!headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SIPRE_ASSERT(cells.size() == headers_.size(),
                 "Table row width does not match header count");
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::pct(double ratio, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << (ratio * 100.0)
        << "%";
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };

    emit_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace sipre
