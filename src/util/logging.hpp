/**
 * @file
 * Error-reporting helpers in the spirit of gem5's panic()/fatal().
 *
 * panic()-class failures indicate a simulator bug (assertion style);
 * fatal()-class failures indicate a user/configuration error.
 */
#ifndef SIPRE_UTIL_LOGGING_HPP
#define SIPRE_UTIL_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sipre
{

/** Abort the process: an internal invariant was violated (simulator bug). */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Exit with an error: the user supplied an invalid configuration. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Print a non-fatal warning for questionable-but-survivable conditions. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace sipre

/**
 * Internal-invariant check that stays enabled in release builds.
 * Use for conditions that indicate a simulator bug if false.
 */
#define SIPRE_ASSERT(cond, msg)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream oss_;                                         \
            oss_ << __FILE__ << ":" << __LINE__ << ": " << (msg)             \
                 << " [" #cond "]";                                          \
            ::sipre::panic(oss_.str());                                      \
        }                                                                    \
    } while (0)

#endif // SIPRE_UTIL_LOGGING_HPP
