/**
 * @file
 * Lightweight statistics accumulators: running means, histograms,
 * and the geometric-mean helper used by the evaluation harness.
 */
#ifndef SIPRE_UTIL_STATISTICS_HPP
#define SIPRE_UTIL_STATISTICS_HPP

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.hpp"

namespace sipre
{

/** Streaming mean/min/max/sum accumulator. */
class RunningStat
{
  public:
    void
    add(double x)
    {
        if (count_ == 0) {
            min_ = max_ = x;
        } else {
            if (x < min_)
                min_ = x;
            if (x > max_)
                max_ = x;
        }
        sum_ += x;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }

    void
    reset()
    {
        *this = RunningStat{};
    }

    /** Rebuild from serialized aggregates (campaign cache loading). */
    void
    restore(std::uint64_t count, double sum, double min_v, double max_v)
    {
        count_ = count;
        sum_ = sum;
        min_ = min_v;
        max_ = max_v;
    }

    /** Fold another accumulator in (multi-core aggregation). */
    void
    merge(const RunningStat &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
        sum_ += other.sum_;
        count_ += other.count_;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [0, bucket_width * buckets); values past
 * the end land in the overflow bucket.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t bucket_width, std::size_t buckets)
        : width_(bucket_width), counts_(buckets + 1, 0)
    {
        SIPRE_ASSERT(bucket_width > 0, "Histogram bucket width must be > 0");
        SIPRE_ASSERT(buckets > 0, "Histogram needs at least one bucket");
    }

    void
    add(std::uint64_t value)
    {
        std::size_t idx = static_cast<std::size_t>(value / width_);
        if (idx >= counts_.size() - 1)
            idx = counts_.size() - 1; // overflow bucket
        ++counts_[idx];
        sum_ += value;
        ++total_;
    }

    std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
    std::size_t buckets() const { return counts_.size() - 1; }
    std::uint64_t width() const { return width_; }
    std::uint64_t overflow() const { return counts_.back(); }
    std::uint64_t total() const { return total_; }
    std::uint64_t sum() const { return sum_; }
    double mean() const { return total_ == 0 ? 0.0 : double(sum_) / total_; }

    /** Rebuild from serialized aggregates (campaign cache loading). */
    void
    restore(const std::vector<std::uint64_t> &counts_with_overflow,
            std::uint64_t sum)
    {
        SIPRE_ASSERT(counts_with_overflow.size() == counts_.size(),
                     "Histogram restore shape mismatch");
        counts_ = counts_with_overflow;
        sum_ = sum;
        total_ = 0;
        for (std::uint64_t c : counts_)
            total_ += c;
    }

    /** Fold another histogram in (must have identical shape). */
    void
    merge(const Histogram &other)
    {
        SIPRE_ASSERT(width_ == other.width_ &&
                         counts_.size() == other.counts_.size(),
                     "Histogram merge shape mismatch");
        for (std::size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        sum_ += other.sum_;
        total_ += other.total_;
    }

    /** Smallest value v such that at least frac of samples are <= bucket end. */
    std::uint64_t
    percentileUpperBound(double frac) const
    {
        SIPRE_ASSERT(frac >= 0.0 && frac <= 1.0, "percentile out of range");
        const std::uint64_t goal =
            static_cast<std::uint64_t>(std::ceil(frac * total_));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= goal)
                return (i + 1) * width_;
        }
        return counts_.size() * width_;
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t sum_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Power-of-two-bucketed histogram over the full uint64 range: bucket i
 * counts values of bit width i, i.e. bucket 0 holds zero and bucket i
 * holds [2^(i-1), 2^i). No overflow bucket can saturate, and
 * resolution stays proportional at every magnitude — the right shape
 * for latencies that span microsecond cache hits to multi-second
 * simulations.
 */
class Log2Histogram
{
  public:
    void
    add(std::uint64_t value)
    {
        ++counts_[std::bit_width(value)];
        sum_ += value;
        ++total_;
    }

    /** `count` identical samples at once (bulk-accounted idle cycles). */
    void
    add(std::uint64_t value, std::uint64_t count)
    {
        counts_[std::bit_width(value)] += count;
        sum_ += value * count;
        total_ += count;
    }

    std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }
    std::uint64_t sum() const { return sum_; }
    double mean() const { return total_ == 0 ? 0.0 : double(sum_) / total_; }

    /** Fold another histogram in (multi-core / metrics aggregation). */
    void
    merge(const Log2Histogram &other)
    {
        for (std::size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += other.counts_[i];
        sum_ += other.sum_;
        total_ += other.total_;
    }

    /** Rebuild from serialized aggregates (result-cache loading). */
    void
    restore(const std::vector<std::uint64_t> &counts, std::uint64_t sum)
    {
        SIPRE_ASSERT(counts.size() == counts_.size(),
                     "Log2Histogram restore shape mismatch");
        sum_ = sum;
        total_ = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            counts_[i] = counts[i];
            total_ += counts[i];
        }
    }

    void reset() { *this = Log2Histogram{}; }

    /** Inclusive upper bound of bucket i: 0, then 2^i - 1. */
    static std::uint64_t
    bucketUpperBound(std::size_t bucket)
    {
        if (bucket == 0)
            return 0;
        if (bucket >= 64)
            return ~0ull;
        return (1ull << bucket) - 1;
    }

    /** Smallest bucket bound covering at least `frac` of the samples. */
    std::uint64_t
    percentileUpperBound(double frac) const
    {
        SIPRE_ASSERT(frac >= 0.0 && frac <= 1.0, "percentile out of range");
        const std::uint64_t goal =
            static_cast<std::uint64_t>(std::ceil(frac * total_));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= goal)
                return bucketUpperBound(i);
        }
        return bucketUpperBound(counts_.size() - 1);
    }

  private:
    std::array<std::uint64_t, 65> counts_{}; ///< bit widths 0..64
    std::uint64_t sum_ = 0;
    std::uint64_t total_ = 0;
};

/** Geometric mean of a set of (positive) ratios. Returns 0 when empty. */
inline double
geomean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        SIPRE_ASSERT(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace sipre

#endif // SIPRE_UTIL_STATISTICS_HPP
