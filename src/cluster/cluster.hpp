/**
 * @file
 * The static-membership peer tier: N sipre_served daemons forming one
 * logical simulation service. Every node knows the full member list;
 * canonical request keys are rendezvous-hashed (util/rendezvous.hpp)
 * to an owner node, and a node that is not the owner proxies the
 * request to it over the existing HTTP + retry stack via the internal
 * POST /cluster/simulate endpoint. A failure detector probes every peer's
 * /readyz on an interval with consecutive-failure thresholds; keys
 * owned by a down node re-hash to the next-ranked live peer — an
 * ordering every node computes identically, so retries land on the
 * same survivor and the owner's coalescer/LRU deduplicates them.
 * When every remote candidate fails, resolve() returns nullptr and
 * the engine runs the simulation locally: node loss costs latency,
 * never a lost or double-counted shard.
 */
#ifndef SIPRE_CLUSTER_CLUSTER_HPP
#define SIPRE_CLUSTER_CLUSTER_HPP

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/backend.hpp"
#include "service/client.hpp"
#include "service/engine.hpp"
#include "service/http.hpp"
#include "util/statistics.hpp"

namespace sipre::cluster
{

/**
 * Proxy retry policy tuned for intra-cluster hops: snappier backoff
 * and a hard wall-clock budget per candidate, so a wedged peer stalls
 * a shard for seconds, not the client-facing 30 s default.
 */
service::RetryPolicy defaultProxyPolicy();

/** Membership and failure-detector knobs. */
struct ClusterOptions
{
    /**
     * The full member list, "host:port" each, self included (it is
     * filtered out of the remote set). Every node must spell every
     * member identically — the strings are hashed for ownership.
     */
    std::vector<std::string> peers;

    /** This node's own "host:port" as the other members spell it. */
    std::string self;

    std::uint64_t probe_interval_ms = 500; ///< failure-detector period
    unsigned probe_timeout_ms = 2000;      ///< per-probe deadline
    unsigned down_after = 3; ///< consecutive failures before "down"
    unsigned up_after = 2;   ///< consecutive successes before "up"

    /** Policy for /cluster/simulate proxy hops. */
    service::RetryPolicy proxy_policy = defaultProxyPolicy();
};

/** One remote peer as the failure detector sees it. */
struct PeerState
{
    std::string node; ///< "host:port"
    bool up = true;   ///< optimistic until proven otherwise
    std::uint64_t probes_ok = 0;
    std::uint64_t probes_failed = 0;
    std::uint64_t transitions = 0; ///< up<->down flips
    std::string last_error;        ///< last failed probe's reason
};

/** Point-in-time snapshot for /cluster/status, /metrics, and tests. */
struct ClusterStats
{
    std::size_t members = 0;  ///< full member count (self included)
    std::size_t peers_up = 0; ///< remote peers currently considered up
    std::uint64_t proxied = 0;          ///< requests resolved remotely
    std::uint64_t proxy_failures = 0;   ///< failed per-candidate hops
    std::uint64_t failovers = 0;        ///< requests past their owner
    std::uint64_t remote_simulates = 0; ///< /cluster/simulate served
    std::uint64_t probes_ok = 0;
    std::uint64_t probes_failed = 0;
    std::vector<PeerState> peer_states;

    // Proxy hop latency (successful resolutions), microseconds.
    std::uint64_t proxy_latency_count = 0;
    double proxy_latency_sum_us = 0.0;
    std::uint64_t proxy_latency_p50_us = 0;
    std::uint64_t proxy_latency_p90_us = 0;
    std::uint64_t proxy_latency_p99_us = 0;
};

/** Parse "host:port,host:port,..." into a peer list. */
bool parsePeerList(const std::string &csv,
                   std::vector<std::string> &out, std::string *error);

/** Split "host:port" (numeric port). False on a malformed node name. */
bool splitHostPort(const std::string &node, std::string &host,
                   std::uint16_t &port);

/** See file comment. Thread-safe. */
class ClusterTier : public service::ResultBackend
{
  public:
    /**
     * Binds to `engine` (not owned). The member list is deduplicated
     * and self is added if absent; the caller still must install the
     * tier on the engine (engine.setResultBackend) and register
     * handle()/metricsText()/readinessReason() on the server.
     */
    ClusterTier(service::SimulationEngine &engine,
                const ClusterOptions &options);
    ~ClusterTier() override;

    ClusterTier(const ClusterTier &) = delete;
    ClusterTier &operator=(const ClusterTier &) = delete;

    /** Launch the failure-detector thread. */
    void start();

    /** Stop the failure detector. Idempotent. */
    void shutdown();

    // ResultBackend: the engine consults these after its cache tiers.
    bool localExecution(const std::string &key) override;
    std::shared_ptr<const SimResult>
    resolve(const service::SimRequest &request, const std::string &key,
            std::string *error) override;

    /**
     * Route the /cluster/ endpoints: POST /cluster/simulate (internal
     * peer-to-peer execution; the response body is the lossless
     * campaign text serialization of the SimResult, with an
     * X-Sipre-Cached header) and GET /cluster/status (membership and
     * counters as JSON). nullopt for anything else.
     */
    std::optional<service::http::Response>
    handle(const service::http::Request &request);

    /**
     * Readiness-probe hook for ServiceServer::setReadinessProbe:
     * "peer-degraded" while any peer is marked down, nullopt when the
     * whole cluster is reachable. A degraded node keeps serving — the
     * reason string lets load drivers distinguish it from "draining".
     */
    std::optional<std::string> readinessReason() const;

    /** The sipre_cluster_* metrics family (Prometheus-style text). */
    std::string metricsText() const;

    ClusterStats stats() const;

    /**
     * The node that should execute `key` right now: the best-ranked
     * member the failure detector considers live (self is always
     * live). Every node computes the same answer from the same peer
     * states — this is the re-hash that migrates a dead node's keys.
     */
    std::string ownerFor(const std::string &key) const;

    /** This node's identity ("host:port"). */
    const std::string &self() const { return self_; }

    /** The deduplicated full member list. */
    const std::vector<std::string> &members() const { return members_; }

  private:
    struct Peer
    {
        PeerState state;
        std::string host;
        std::uint16_t port = 0;
        unsigned consecutive_ok = 0;
        unsigned consecutive_fail = 0;
    };

    void probeLoop();
    void probeAllOnce();
    bool isUpLocked(const std::string &node) const;
    std::shared_ptr<const SimResult>
    proxyTo(Peer &peer, const service::SimRequest &request,
            std::string *error);

    service::SimulationEngine &engine_;
    ClusterOptions options_;
    std::string self_;
    std::vector<std::string> members_; ///< sorted, unique, incl. self

    mutable std::mutex mutex_;
    std::vector<Peer> peers_; ///< remote members only

    // Counters (guarded by mutex_).
    std::uint64_t proxied_ = 0;
    std::uint64_t proxy_failures_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t remote_simulates_ = 0;
    std::uint64_t probes_ok_ = 0;
    std::uint64_t probes_failed_ = 0;
    Log2Histogram proxy_latency_hist_;
    RunningStat proxy_latency_stat_;

    std::mutex probe_mutex_;
    std::condition_variable probe_cv_;
    bool stopping_ = false;
    std::thread probe_thread_;
    bool started_ = false;
};

} // namespace sipre::cluster

#endif // SIPRE_CLUSTER_CLUSTER_HPP
