#include "cluster/cluster.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <sstream>

#include <unistd.h>

#include "core/experiment.hpp"
#include "core/json_io.hpp"
#include "util/fault.hpp"
#include "util/rendezvous.hpp"

namespace sipre::cluster
{

namespace
{

using service::http::Request;
using service::http::Response;

Response
jsonResponse(int status, std::string body)
{
    Response response;
    response.status = status;
    response.headers.emplace_back("Content-Type", "application/json");
    response.body = std::move(body);
    return response;
}

} // namespace

service::RetryPolicy
defaultProxyPolicy()
{
    service::RetryPolicy policy;
    policy.max_attempts = 3;
    policy.base_delay_ms = 25;
    policy.max_delay_ms = 250;
    policy.request_timeout_ms = 10'000;
    policy.total_deadline_ms = 12'000;
    return policy;
}

bool
splitHostPort(const std::string &node, std::string &host,
              std::uint16_t &port)
{
    const std::size_t colon = node.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= node.size())
        return false;
    std::uint64_t value = 0;
    for (std::size_t i = colon + 1; i < node.size(); ++i) {
        const char c = node[i];
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        if (value > 65535)
            return false;
    }
    if (value == 0)
        return false;
    host = node.substr(0, colon);
    port = static_cast<std::uint16_t>(value);
    return true;
}

bool
parsePeerList(const std::string &csv, std::vector<std::string> &out,
              std::string *error)
{
    out.clear();
    std::string entry;
    std::istringstream is(csv);
    while (std::getline(is, entry, ',')) {
        // Trim surrounding whitespace so "a:1, b:2" works.
        const auto first = entry.find_first_not_of(" \t");
        const auto last = entry.find_last_not_of(" \t");
        if (first == std::string::npos) {
            if (error)
                *error = "empty peer entry in '" + csv + "'";
            return false;
        }
        entry = entry.substr(first, last - first + 1);
        std::string host;
        std::uint16_t port = 0;
        if (!splitHostPort(entry, host, port)) {
            if (error)
                *error = "bad peer '" + entry +
                         "' (expected host:port with a numeric port)";
            return false;
        }
        out.push_back(entry);
    }
    if (out.empty()) {
        if (error)
            *error = "empty peer list";
        return false;
    }
    return true;
}

ClusterTier::ClusterTier(service::SimulationEngine &engine,
                         const ClusterOptions &options)
    : engine_(engine), options_(options), self_(options.self)
{
    members_ = options_.peers;
    members_.push_back(self_);
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()),
                   members_.end());

    for (const std::string &node : members_) {
        if (node == self_)
            continue;
        Peer peer;
        peer.state.node = node;
        if (!splitHostPort(node, peer.host, peer.port))
            continue; // parsePeerList validated; belt and braces
        peers_.push_back(std::move(peer));
    }
    if (options_.down_after == 0)
        options_.down_after = 1;
    if (options_.up_after == 0)
        options_.up_after = 1;
}

ClusterTier::~ClusterTier()
{
    shutdown();
}

void
ClusterTier::start()
{
    if (started_ || peers_.empty())
        return;
    started_ = true;
    probe_thread_ = std::thread([this] { probeLoop(); });
}

void
ClusterTier::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(probe_mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    probe_cv_.notify_all();
    if (probe_thread_.joinable())
        probe_thread_.join();
}

void
ClusterTier::probeLoop()
{
    for (;;) {
        probeAllOnce();
        std::unique_lock<std::mutex> lock(probe_mutex_);
        probe_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.probe_interval_ms),
            [this] { return stopping_; });
        if (stopping_)
            return;
    }
}

void
ClusterTier::probeAllOnce()
{
    // Snapshot the endpoints, probe over the network without holding
    // the state lock, then apply the verdicts.
    struct Verdict
    {
        std::size_t index;
        bool ok;
        std::string error;
    };
    std::vector<Verdict> verdicts;
    std::size_t count = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        count = peers_.size();
    }
    for (std::size_t i = 0; i < count; ++i) {
        std::string host;
        std::uint16_t port = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            host = peers_[i].host;
            port = peers_[i].port;
        }

        Request probe;
        probe.method = "GET";
        probe.target = "/readyz";
        Response response;
        std::string error;
        bool ok = false;
        const int fd = service::http::dialTcp(host, port, &error);
        if (fd >= 0) {
            ok = service::http::roundTrip(
                fd, probe, response, &error,
                static_cast<int>(options_.probe_timeout_ms));
            ::close(fd);
        }
        bool up_vote = false;
        std::string reason;
        if (!ok) {
            // Unreachable, refused, or wedged: the liveness failure
            // the detector exists for.
            reason = error.empty() ? "probe failed" : error;
        } else if (response.status == 503 &&
                   response.body.find("\"reason\":\"draining\"") !=
                       std::string::npos) {
            // Live but on its way out: treat as down so new work
            // routes elsewhere before the listener disappears.
            reason = "peer draining";
        } else {
            // 200 ready — or degraded-but-routable (peer-degraded
            // readiness, or a pre-readyz node answering 404): the peer
            // can still execute work, so it stays in the ring.
            up_vote = true;
        }
        verdicts.push_back({i, up_vote, std::move(reason)});
    }

    std::lock_guard<std::mutex> lock(mutex_);
    for (const Verdict &v : verdicts) {
        if (v.index >= peers_.size())
            continue;
        Peer &peer = peers_[v.index];
        if (v.ok) {
            ++probes_ok_;
            ++peer.state.probes_ok;
            ++peer.consecutive_ok;
            peer.consecutive_fail = 0;
            if (!peer.state.up &&
                peer.consecutive_ok >= options_.up_after) {
                peer.state.up = true;
                ++peer.state.transitions;
            }
        } else {
            ++probes_failed_;
            ++peer.state.probes_failed;
            ++peer.consecutive_fail;
            peer.consecutive_ok = 0;
            peer.state.last_error = v.error;
            if (peer.state.up &&
                peer.consecutive_fail >= options_.down_after) {
                peer.state.up = false;
                ++peer.state.transitions;
            }
        }
    }
}

bool
ClusterTier::isUpLocked(const std::string &node) const
{
    if (node == self_)
        return true;
    for (const Peer &peer : peers_) {
        if (peer.state.node == node)
            return peer.state.up;
    }
    return false;
}

std::string
ClusterTier::ownerFor(const std::string &key) const
{
    const std::vector<std::string> ranked = rendezvousRank(key, members_);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string &node : ranked) {
        if (isUpLocked(node))
            return node;
    }
    return self_; // everyone else down: we are the cluster now
}

bool
ClusterTier::localExecution(const std::string &key)
{
    return ownerFor(key) == self_;
}

std::shared_ptr<const SimResult>
ClusterTier::proxyTo(Peer &peer, const service::SimRequest &request,
                     std::string *error)
{
    Request proxy;
    proxy.method = "POST";
    proxy.target = "/cluster/simulate";
    proxy.headers.emplace_back("Content-Type", "application/json");
    proxy.body = requestToJson(request);

    const service::ClientOutcome outcome = service::requestWithRetry(
        peer.host, peer.port, proxy, options_.proxy_policy);
    if (!outcome.ok) {
        *error = peer.state.node + ": " + outcome.error;
        return nullptr;
    }
    if (outcome.response.status != 200) {
        *error = peer.state.node + ": status " +
                 std::to_string(outcome.response.status);
        return nullptr;
    }
    std::istringstream is(outcome.response.body);
    SimResult result;
    if (!readSimResultText(is, result)) {
        *error = peer.state.node + ": garbled result body";
        return nullptr;
    }
    return std::make_shared<const SimResult>(std::move(result));
}

std::shared_ptr<const SimResult>
ClusterTier::resolve(const service::SimRequest &request,
                     const std::string &key, std::string *error)
{
    const auto start = std::chrono::steady_clock::now();
    const std::vector<std::string> ranked = rendezvousRank(key, members_);
    std::string last_error = "no live peer";
    bool fell_over = false;
    for (const std::string &node : ranked) {
        if (node == self_)
            break; // our own rank reached: execute locally
        Peer *peer = nullptr;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (Peer &p : peers_) {
                if (p.state.node == node && p.state.up)
                    peer = &p;
            }
        }
        if (peer == nullptr) {
            // Marked down: the re-hash skips it. Every node computes
            // the same next candidate, so retries of this key land on
            // one survivor and dedupe in its coalescer/LRU.
            fell_over = true;
            continue;
        }
        // Fault site: per-candidate peer hop. Lets the chaos suite
        // partition or delay a specific proxy leg deterministically,
        // without real networking failures.
        if (const fault::Decision d = fault::at(fault::Site::kPeer)) {
            fault::applyDelay(d);
            if (d.fail) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++proxy_failures_;
                last_error = node + ": injected peer fault";
                fell_over = true;
                continue;
            }
        }
        std::string hop_error;
        if (auto result = proxyTo(*peer, request, &hop_error)) {
            const double us =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            std::lock_guard<std::mutex> lock(mutex_);
            ++proxied_;
            if (fell_over)
                ++failovers_;
            proxy_latency_stat_.add(us);
            proxy_latency_hist_.add(static_cast<std::uint64_t>(us));
            return result;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        ++proxy_failures_;
        last_error = hop_error;
        fell_over = true;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++failovers_;
    }
    if (error)
        *error = last_error;
    return nullptr;
}

std::optional<Response>
ClusterTier::handle(const Request &request)
{
    if (request.target == "/cluster/simulate") {
        if (request.method != "POST") {
            Response response = jsonResponse(
                405, "{\"status\":\"error\",\"error\":\"method not "
                     "allowed (Allow: POST)\"}");
            response.headers.emplace_back("Allow", "POST");
            return response;
        }
        service::SimRequest sim_request;
        std::string error;
        if (!service::parseSimRequest(request.body, sim_request, error))
            return jsonResponse(400,
                                "{\"status\":\"error\",\"error\":\"" +
                                    jsonEscape(error) + "\"}");
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++remote_simulates_;
        }
        // allow_proxy=false: a proxied request executes here, full
        // stop. Without it two nodes with momentarily divergent peer
        // states could bounce a request between each other.
        const service::SubmitOutcome outcome =
            engine_.submit(sim_request, /*allow_proxy=*/false);
        switch (outcome.status) {
        case service::SubmitStatus::kRejected: {
            Response response = jsonResponse(
                429, "{\"status\":\"rejected\",\"error\":\"" +
                         jsonEscape(outcome.error) + "\"}");
            response.headers.emplace_back("Retry-After", "1");
            return response;
        }
        case service::SubmitStatus::kShutdown:
            return jsonResponse(503,
                                "{\"status\":\"draining\",\"error\":\"" +
                                    jsonEscape(outcome.error) + "\"}");
        case service::SubmitStatus::kFailed:
            return jsonResponse(500,
                                "{\"status\":\"error\",\"error\":\"" +
                                    jsonEscape(outcome.error) + "\"}");
        case service::SubmitStatus::kOk:
            break;
        }
        // The lossless campaign text format — not JSON — so the
        // requester caches a bit-exact SimResult and cluster results
        // stay byte-identical to solo runs.
        std::ostringstream body;
        writeSimResultText(body, *outcome.result);
        Response response;
        response.status = 200;
        response.headers.emplace_back("Content-Type", "text/plain");
        response.headers.emplace_back(
            "X-Sipre-Cached",
            (outcome.cache_hit || outcome.disk_hit || outcome.coalesced)
                ? "1"
                : "0");
        response.body = body.str();
        return response;
    }

    if (request.target == "/cluster/status") {
        if (request.method != "GET") {
            Response response = jsonResponse(
                405, "{\"status\":\"error\",\"error\":\"method not "
                     "allowed (Allow: GET)\"}");
            response.headers.emplace_back("Allow", "GET");
            return response;
        }
        const ClusterStats s = stats();
        std::ostringstream body;
        body << "{\"self\":\"" << jsonEscape(self_) << "\",\"members\":"
             << s.members << ",\"peers_up\":" << s.peers_up
             << ",\"proxied\":" << s.proxied
             << ",\"proxy_failures\":" << s.proxy_failures
             << ",\"failovers\":" << s.failovers
             << ",\"remote_simulates\":" << s.remote_simulates
             << ",\"peers\":[";
        for (std::size_t i = 0; i < s.peer_states.size(); ++i) {
            const PeerState &p = s.peer_states[i];
            if (i > 0)
                body << ",";
            body << "{\"node\":\"" << jsonEscape(p.node) << "\",\"up\":"
                 << (p.up ? "true" : "false")
                 << ",\"probes_ok\":" << p.probes_ok
                 << ",\"probes_failed\":" << p.probes_failed
                 << ",\"transitions\":" << p.transitions << "}";
        }
        body << "]}";
        return jsonResponse(200, body.str());
    }

    return std::nullopt;
}

std::optional<std::string>
ClusterTier::readinessReason() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Peer &peer : peers_) {
        if (!peer.state.up)
            return "peer-degraded";
    }
    return std::nullopt;
}

ClusterStats
ClusterTier::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ClusterStats s;
    s.members = members_.size();
    s.proxied = proxied_;
    s.proxy_failures = proxy_failures_;
    s.failovers = failovers_;
    s.remote_simulates = remote_simulates_;
    s.probes_ok = probes_ok_;
    s.probes_failed = probes_failed_;
    for (const Peer &peer : peers_) {
        s.peer_states.push_back(peer.state);
        if (peer.state.up)
            ++s.peers_up;
    }
    s.proxy_latency_count = proxy_latency_stat_.count();
    s.proxy_latency_sum_us = proxy_latency_stat_.sum();
    if (proxy_latency_hist_.total() > 0) {
        s.proxy_latency_p50_us =
            proxy_latency_hist_.percentileUpperBound(0.50);
        s.proxy_latency_p90_us =
            proxy_latency_hist_.percentileUpperBound(0.90);
        s.proxy_latency_p99_us =
            proxy_latency_hist_.percentileUpperBound(0.99);
    }
    return s;
}

std::string
ClusterTier::metricsText() const
{
    const ClusterStats s = stats();
    std::ostringstream body;
    body << "# TYPE sipre_cluster_members gauge\n"
         << "sipre_cluster_members " << s.members << "\n"
         << "# TYPE sipre_cluster_peers_up gauge\n"
         << "sipre_cluster_peers_up " << s.peers_up << "\n"
         << "# TYPE sipre_cluster_peer_up gauge\n";
    for (const PeerState &p : s.peer_states)
        body << "sipre_cluster_peer_up{peer=\"" << p.node << "\"} "
             << (p.up ? 1 : 0) << "\n";
    body << "# TYPE sipre_cluster_peer_transitions_total counter\n";
    for (const PeerState &p : s.peer_states)
        body << "sipre_cluster_peer_transitions_total{peer=\"" << p.node
             << "\"} " << p.transitions << "\n";
    body << "# TYPE sipre_cluster_proxied_total counter\n"
         << "sipre_cluster_proxied_total " << s.proxied << "\n"
         << "# TYPE sipre_cluster_proxy_failures_total counter\n"
         << "sipre_cluster_proxy_failures_total " << s.proxy_failures
         << "\n"
         << "# TYPE sipre_cluster_failovers_total counter\n"
         << "sipre_cluster_failovers_total " << s.failovers << "\n"
         << "# TYPE sipre_cluster_remote_simulates_total counter\n"
         << "sipre_cluster_remote_simulates_total " << s.remote_simulates
         << "\n"
         << "# TYPE sipre_cluster_probes_total counter\n"
         << "sipre_cluster_probes_total{outcome=\"ok\"} " << s.probes_ok
         << "\n"
         << "sipre_cluster_probes_total{outcome=\"fail\"} "
         << s.probes_failed << "\n"
         << "# TYPE sipre_cluster_proxy_latency_us summary\n"
         << "sipre_cluster_proxy_latency_us_count "
         << s.proxy_latency_count << "\n"
         << "sipre_cluster_proxy_latency_us_sum "
         << jsonDouble(s.proxy_latency_sum_us) << "\n"
         << "sipre_cluster_proxy_latency_us{quantile=\"0.5\"} "
         << s.proxy_latency_p50_us << "\n"
         << "sipre_cluster_proxy_latency_us{quantile=\"0.9\"} "
         << s.proxy_latency_p90_us << "\n"
         << "sipre_cluster_proxy_latency_us{quantile=\"0.99\"} "
         << s.proxy_latency_p99_us << "\n";
    return body.str();
}

} // namespace sipre::cluster
