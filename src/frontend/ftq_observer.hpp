/**
 * @file
 * The narrow front-end hook an FTQ-directed prefetcher (hwpf's FDIP)
 * attaches to. The front-end runs a bounded branch-predictor-validated
 * walk *ahead* of FTQ allocation — the region a deeper FTQ would have
 * covered — and reports each upcoming fetch line exactly once. The walk
 * stops at the first branch the prediction structures would get wrong
 * (that is where the real machine's fetch-ahead would diverge), so the
 * observed stream is the front-end's own predicted path, never oracle
 * knowledge.
 *
 * Contract:
 *  - onUpcomingLine(line, now): `line` will be requested by an FTQ
 *    entry within the configured lookahead unless a redirect
 *    intervenes. Called at most a few times per cycle; never during a
 *    fetch-ahead stall.
 *  - onRedirect(now): fetch-ahead hit a mispredict/BTB-miss stall.
 *    Previously reported lines beyond the branch are now wrong-path
 *    from the machine's point of view: the observer must drop any
 *    prefetches it has not issued yet (drop-on-redirect). After the
 *    branch resolves, the walk restarts at the corrected fetch point
 *    and re-reports from there.
 *
 * Interface-only header: src/hwpf/ implements it without pulling in
 * the whole front-end.
 */
#ifndef SIPRE_FRONTEND_FTQ_OBSERVER_HPP
#define SIPRE_FRONTEND_FTQ_OBSERVER_HPP

#include "util/types.hpp"

namespace sipre
{

/** See file comment. */
class FtqObserver
{
  public:
    virtual ~FtqObserver() = default;

    /** `line` is on the predicted path ahead of the FTQ. */
    virtual void onUpcomingLine(Addr line_addr, Cycle now) = 0;

    /** Fetch-ahead redirected; drop unissued run-ahead prefetches. */
    virtual void onRedirect(Cycle now) = 0;
};

} // namespace sipre

#endif // SIPRE_FRONTEND_FTQ_OBSERVER_HPP
