/**
 * @file
 * The decoupled front-end (FDP) model.
 *
 * Implements the industry-standard fetch-directed-prefetching front-end
 * of Ishii et al. that the paper's methodology builds on: the branch
 * prediction structures run ahead of fetch and fill the FTQ with basic
 * blocks; every FTQ entry issues its cache lines to the L1-I as soon as
 * it is allocated (out of order, with same-line merging); instructions
 * leave the FTQ head in order once their lines arrive. Mispredictions
 * and BTB misses on taken branches stall fetch-ahead until the branch
 * is corrected (post-fetch correction, decode, or execution).
 *
 * Because the simulator is trace-driven, the predicted path and the
 * committed path coincide until the first mispredicted branch; wrong
 * path fetch is modeled as a fetch bubble (the ChampSim approach).
 */
#ifndef SIPRE_FRONTEND_FRONTEND_HPP
#define SIPRE_FRONTEND_FRONTEND_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "branch/unit.hpp"
#include "frontend/decode_queue.hpp"
#include "frontend/frontend_stats.hpp"
#include "frontend/ftq.hpp"
#include "frontend/ftq_observer.hpp"
#include "frontend/scenario_timeline.hpp"
#include "memory/hierarchy.hpp"
#include "memory/tlb.hpp"
#include "trace/trace.hpp"
#include "util/flat_map.hpp"

namespace sipre
{

/** Map from trigger PC to prefetch target addresses (no-overhead mode). */
using SwPrefetchTriggers = std::unordered_map<Addr, std::vector<Addr>>;

/** Front-end configuration. */
struct FrontendConfig
{
    std::uint32_t ftq_entries = 24;     ///< 2 = conservative, 24 = industry
    std::uint32_t max_block_instrs = 8; ///< basic-block cap per FTQ entry
    std::uint32_t fetch_width = 6;      ///< instrs to decode per cycle
    std::uint32_t blocks_per_cycle = 3; ///< FTQ allocations per cycle
    Cycle decode_latency = 5;           ///< fetch-to-dispatch pipe depth
    bool pfc = true;                    ///< post-fetch correction enabled

    /**
     * Model wrong-path fetch during mispredict/BTB-miss stalls: the
     * front-end cannot know it is wrong, so it keeps issuing sequential
     * line fetches down the (wrong) predicted path, which prefetches
     * soon-needed code. Depth is bounded by the FTQ size, so a deep FTQ
     * prefetches far more of the wrong path than a conservative one.
     */
    bool wrong_path_fetch = true;

    /**
     * Blocks of wrong path followed per stall (also bounded by free FTQ
     * space). Real wrong paths diverge from useful code quickly, so the
     * effective useful depth is small.
     */
    std::uint32_t wrong_path_depth = 2;

    /**
     * Oracle branch prediction (limit studies): the front-end follows
     * the committed path with no misprediction or BTB-miss stalls.
     * Predictors still train normally.
     */
    bool oracle_bp = false;

    /** Model an instruction TLB in front of L1-I line fetches. */
    bool itlb = false;
    TlbConfig itlb_config{};

    BranchUnitConfig branch;
};

/**
 * The decoupled front-end. Owns the FTQ and the branch unit; talks to
 * the shared MemoryHierarchy instruction port and fills the shared
 * DecodeQueue.
 */
class DecoupledFrontEnd
{
  public:
    DecoupledFrontEnd(const FrontendConfig &config, const Trace &trace,
                      MemoryHierarchy &memory, DecodeQueue &decode_queue);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Earliest future cycle at which the front-end can make progress on
     * its own (deliver, allocate, issue a line, or finish an ITLB
     * walk); kNoCycle when it is waiting purely on memory or the
     * back-end. A tick at any earlier cycle must change nothing except
     * the per-cycle taxonomy counters, which the simulator accounts for
     * in bulk via accountSkippedCycles().
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account the Sec. III taxonomy counters for `count` skipped cycles
     * during which the FTQ provably did not change. Mirrors what
     * classifyCycle() would have counted on each of those cycles.
     */
    void accountSkippedCycles(Cycle count);

    /**
     * The back-end decoded the instruction at trace_index (it entered
     * the ROB). Resumes a BTB-miss stall when PFC is disabled.
     */
    void onBranchDecoded(std::uint64_t trace_index, Cycle now);

    /**
     * The back-end executed the branch at trace_index: train the
     * predictors and, if fetch-ahead is stalled on this branch, repair
     * the history and resume.
     */
    void onBranchExecuted(std::uint64_t trace_index, Cycle now);

    /** No-overhead software prefetching: trigger map keyed by PC. */
    void setSwPrefetchTriggers(const SwPrefetchTriggers *triggers)
    {
        triggers_ = triggers;
    }

    /** True when every trace instruction has been delivered to decode. */
    bool done() const { return delivered_index_ >= trace_.size(); }

    const FrontendStats &stats() const { return stats_; }
    const BranchUnit &branchUnit() const { return unit_; }

    /**
     * Attach (window > 0) or detach (window == 0) the windowed
     * scenario-attribution recorder. Off by default; when attached,
     * every simulated cycle's taxonomy class is also bucketed into
     * N-cycle windows retrievable via scenarioTimeline().
     */
    void
    enableScenarioTimeline(std::uint32_t window)
    {
        timeline_ = window != 0
                        ? std::make_unique<ScenarioTimelineRecorder>(window)
                        : nullptr;
    }

    /** The recorded timeline; empty/disabled when never attached. */
    ScenarioTimeline
    scenarioTimeline() const
    {
        return timeline_ ? timeline_->finish() : ScenarioTimeline{};
    }

    /** The instruction TLB (null when FrontendConfig::itlb is false). */
    const Tlb *itlb() const { return itlb_ ? itlb_.get() : nullptr; }
    BranchUnit &branchUnit() { return unit_; }

    /**
     * Attach (or detach, with null) the FTQ run-ahead observer (see
     * frontend/ftq_observer.hpp). The walk examines up to
     * `blocks_per_cycle` basic blocks per cycle and never ranges more
     * than `lookahead_blocks` blocks past the current fetch point.
     * With no observer attached the walk never runs, so the front-end
     * behaves bit-identically to a build without this hook.
     */
    void
    setFtqObserver(FtqObserver *observer,
                   std::uint32_t lookahead_blocks = 32,
                   std::uint32_t blocks_per_cycle = 2)
    {
        observer_ = observer;
        observer_lookahead_blocks_ = lookahead_blocks;
        observer_blocks_per_cycle_ = blocks_per_cycle;
        observe_index_ = fetch_index_;
        walk_blocked_ = false;
        observer_last_line_ = kNoAddr;
    }

    /**
     * Validate the incremental FTQ counters against a full rescan at
     * the end of every tick (and panic on divergence). Also enabled by
     * the SIPRE_FRONTEND_CROSSCHECK environment variable; used by the
     * differential suite to pin the O(1) fast path to the scan
     * semantics it replaced.
     */
    void enableCounterCrosscheck(bool on) { crosscheck_ = on; }

    /** Zero all event counters (end-of-warmup). State is kept warm. */
    void
    resetStats()
    {
        stats_ = FrontendStats{};
        unit_.resetStats();
        if (timeline_)
            timeline_->resetKeepPosition();
    }
    const Ftq &ftq() const { return ftq_; }

  private:
    /** Why fetch-ahead is currently stalled. */
    enum class StallReason : std::uint8_t {
        kNone,
        kMispredict,  ///< resume when the branch executes
        kBtbMissTaken ///< resume at pre-decode (PFC) or decode
    };

    struct PendingBranch
    {
        BranchPrediction pred;
        // Light (allocation-free) checkpoint: valid because the FDP
        // snapshots immediately before predicting and a wrong
        // prediction stalls fetch-ahead, so at most one speculation
        // separates capture from any repair.
        BranchLightCheckpoint checkpoint;
        bool stalling = false;
    };

    void drainCompletions(Cycle now);
    void deliverToDecode(Cycle now);
    void allocateBlocks(Cycle now);
    void issueLineFetches(Cycle now);
    void issueWrongPathFetches(Cycle now);
    void shadowWalk(Addr start_pc, std::size_t max_blocks);
    void runAheadWalk(Cycle now);
    bool walkCanProgress() const;
    /** Would shadowProbe follow the trace at this (branch) index? */
    bool probeAgreesAt(std::uint64_t index);
    void classifyCycle(Cycle now);
    void firePredecode(const FtqEntry &entry, Cycle now);
    void resumeFromStall(Cycle now);
    void crosscheckCounters() const;

    FrontendConfig config_;
    const Trace &trace_;
    MemoryHierarchy &memory_;
    DecodeQueue &decode_queue_;
    BranchUnit unit_;
    Ftq ftq_;
    FrontendStats stats_;

    std::uint64_t fetch_index_ = 0;     ///< next instruction to enter FTQ
    std::uint64_t delivered_index_ = 0; ///< next instruction to decode

    StallReason stall_ = StallReason::kNone;
    std::uint64_t stall_branch_index_ = 0;
    Cycle stall_begin_ = 0;
    std::vector<Addr> wrong_path_lines_; ///< shadow-walk result, drained
    std::size_t wrong_path_next_ = 0;

    FlatMap<PendingBranch> pending_branches_;

    /** Lines with an in-flight FTQ-issued request (for merging). */
    FlatMap<std::uint32_t> inflight_lines_;

    // --- Incremental FTQ summaries -----------------------------------
    // Every per-cycle scan the reference model did over the FTQ is
    // answered by these counters instead; crosscheckCounters() pins
    // them to the scans they replaced. Maintained at the (unique)
    // transition points: entry push, line-state changes, the
    // became-fetch-done moment in drainCompletions, and entry pop.
    /** Entries (any position) whose fetch is not yet complete. */
    std::size_t unready_entries_ = 0;
    /** fetch-done entries not yet counted as Fig. 10 waiting events. */
    std::size_t done_uncounted_ = 0;
    /** Lines in state kNotIssued across the whole FTQ. */
    std::size_t not_issued_lines_ = 0;
    /** Lines in state kWaitingTlb across the whole FTQ. */
    std::size_t tlb_waiting_lines_ = 0;
    bool crosscheck_ = false;

    const SwPrefetchTriggers *triggers_ = nullptr;
    std::unique_ptr<Tlb> itlb_;
    std::unique_ptr<ScenarioTimelineRecorder> timeline_;

    // --- FTQ run-ahead observer (FDIP hook) ---------------------------
    FtqObserver *observer_ = nullptr;
    std::uint32_t observer_lookahead_blocks_ = 32;
    std::uint32_t observer_blocks_per_cycle_ = 2;
    /** Next trace index the run-ahead walk examines (>= fetch_index_). */
    std::uint64_t observe_index_ = 0;
    /**
     * The walk stopped at a branch the prediction structures would get
     * wrong. shadowProbe is side-effect-free, so with frozen predictor
     * state a re-probe cannot change the answer — a blocked walk is a
     * no-event for nextEventCycle(). Cleared wherever predictor/BTB
     * state mutates (allocation, resolve, stall repair).
     */
    bool walk_blocked_ = false;
    /** Last line reported to the observer (suppresses duplicates). */
    Addr observer_last_line_ = kNoAddr;
};

} // namespace sipre

#endif // SIPRE_FRONTEND_FRONTEND_HPP
