/**
 * @file
 * The Fetch Target Queue: the structure at the center of the paper's
 * characterization. Each entry represents one basic block (up to eight
 * instructions) on the predicted path; entries issue their cache lines
 * to the L1-I out of order but deliver instructions to decode in order.
 */
#ifndef SIPRE_FRONTEND_FTQ_HPP
#define SIPRE_FRONTEND_FTQ_HPP

#include <array>
#include <cstdint>

#include "branch/unit.hpp"
#include "util/circular_buffer.hpp"
#include "util/types.hpp"

namespace sipre
{

/** Fetch state of one cache line needed by an FTQ entry. */
enum class LineState : std::uint8_t {
    kNotIssued,
    kWaitingTlb, ///< ITLB walk in progress; issue deferred
    kInFlight,
    kReady
};

/** One FTQ entry: a basic block on the predicted path. */
struct FtqEntry
{
    std::uint64_t first_index = 0; ///< trace index of the first instruction
    std::uint32_t count = 0;       ///< instructions in the block
    Addr start_pc = 0;
    Addr end_pc = 0;               ///< pc of the last instruction

    std::array<Addr, 2> lines{kNoAddr, kNoAddr};
    std::array<LineState, 2> line_state{LineState::kNotIssued,
                                        LineState::kNotIssued};
    std::array<Cycle, 2> issue_ready{0, 0}; ///< earliest issue (ITLB)
    std::uint8_t num_lines = 0;

    Cycle alloc_cycle = 0;
    Cycle fetch_complete_cycle = kNoCycle;
    Cycle became_head_cycle = kNoCycle;

    std::uint32_t delivered = 0;   ///< instructions already sent to decode

    // Terminating-branch bookkeeping (valid when ends_in_branch).
    bool ends_in_branch = false;
    std::uint64_t branch_index = 0;

    // Characterization flags (Figs. 10/11 are event counts, so each
    // entry contributes at most once to each).
    bool counted_waiting = false;
    bool counted_partial = false;

    /** All needed lines have been fetched. */
    bool
    fetchDone() const
    {
        for (std::uint8_t i = 0; i < num_lines; ++i) {
            if (line_state[i] != LineState::kReady)
                return false;
        }
        return true;
    }

    /** All instructions have been handed to decode. */
    bool fullyDelivered() const { return delivered == count; }
};

/** The FTQ is a bounded FIFO of FtqEntry. */
using Ftq = CircularBuffer<FtqEntry>;

} // namespace sipre

#endif // SIPRE_FRONTEND_FTQ_HPP
