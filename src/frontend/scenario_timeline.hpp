/**
 * @file
 * Windowed FTQ-scenario attribution: the per-cycle taxonomy of Sec. III
 * (Scenario 1 Shoot-Through / Scenario 2 Stalling-Head / Scenario 3
 * Shadow-Stalls, plus FTQ-empty and redirect) bucketed into fixed
 * N-cycle windows, so a run's aggregate counters gain a time axis —
 * where in the run a workload transitions between scenarios.
 *
 * Off by default: the front-end records into a ScenarioTimelineRecorder
 * only when one is attached (Simulator::enableScenarioTimeline), so the
 * differential tests stay bit-identical and the hot loop pays a single
 * null-pointer check. The recorder is fed exactly once per simulated
 * cycle — either by classifyCycle() on a real tick or in bulk by
 * accountSkippedCycles() over a fast-forwarded span — so the sum of all
 * window counts equals the run's cycle count.
 */
#ifndef SIPRE_FRONTEND_SCENARIO_TIMELINE_HPP
#define SIPRE_FRONTEND_SCENARIO_TIMELINE_HPP

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace sipre
{

/** The per-cycle FTQ state classes the timeline distinguishes. */
enum class FtqScenario : std::uint8_t {
    kShootThrough = 0, ///< Scenario 1: head fetch-done, delivering
    kStallingHead,     ///< Scenario 2: head stalled, all others ready
    kShadowStall,      ///< Scenario 3: head + other entries stalled
    kEmpty,            ///< FTQ empty, fetch-ahead running
    kRedirect,         ///< FTQ empty because fetch-ahead is stalled
};

inline constexpr std::size_t kFtqScenarioCount = 5;

/** Stable short name for serialization and counter-track keys. */
inline const char *
ftqScenarioName(FtqScenario scenario)
{
    switch (scenario) {
    case FtqScenario::kShootThrough: return "scenario1";
    case FtqScenario::kStallingHead: return "scenario2";
    case FtqScenario::kShadowStall: return "scenario3";
    case FtqScenario::kEmpty: return "ftq_empty";
    case FtqScenario::kRedirect: return "redirect";
    }
    return "?";
}

/** One window: per-class cycle counts starting at `start_cycle`. */
struct ScenarioWindow
{
    Cycle start_cycle = 0;
    std::array<std::uint64_t, kFtqScenarioCount> cycles{};

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const std::uint64_t c : cycles)
            sum += c;
        return sum;
    }
};

/**
 * The timeline attached to a SimResult. `window_size == 0` means the
 * feature was off for the run (the default) and `windows` is empty.
 * Window start cycles count from the start of simulation; the first
 * post-warmup window may be partial because warmup cycles are dropped.
 */
struct ScenarioTimeline
{
    std::uint32_t window_size = 0;
    std::vector<ScenarioWindow> windows;

    bool enabled() const { return window_size != 0; }

    std::uint64_t
    totalCycles() const
    {
        std::uint64_t sum = 0;
        for (const ScenarioWindow &w : windows)
            sum += w.total();
        return sum;
    }

    bool
    operator==(const ScenarioTimeline &other) const
    {
        if (window_size != other.window_size ||
            windows.size() != other.windows.size())
            return false;
        for (std::size_t i = 0; i < windows.size(); ++i) {
            if (windows[i].start_cycle != other.windows[i].start_cycle ||
                windows[i].cycles != other.windows[i].cycles)
                return false;
        }
        return true;
    }
};

/**
 * Accumulates consecutive per-cycle classifications into windows. The
 * cursor is the absolute cycle of the next record; record(s, n) spreads
 * n consecutive cycles of class s across window boundaries, so a bulk
 * skipped span lands in the same windows a cycle-by-cycle loop would
 * fill (the differential tests rely on this).
 */
class ScenarioTimelineRecorder
{
  public:
    explicit ScenarioTimelineRecorder(std::uint32_t window_size)
        : window_size_(window_size == 0 ? 1 : window_size)
    {
    }

    void
    record(FtqScenario scenario, Cycle count)
    {
        const std::size_t slot = static_cast<std::size_t>(scenario);
        while (count > 0) {
            if (!dirty_) {
                current_.start_cycle = cursor_ - (cursor_ % window_size_);
                dirty_ = true;
            }
            const Cycle window_end = current_.start_cycle + window_size_;
            const Cycle take = std::min<Cycle>(count, window_end - cursor_);
            current_.cycles[slot] += take;
            cursor_ += take;
            count -= take;
            if (cursor_ == window_end)
                flush();
        }
    }

    /**
     * End-of-warmup: drop everything recorded so far but keep the
     * cursor, so post-warmup cycles keep their absolute positions (the
     * warmup window they land in simply starts partial).
     */
    void
    resetKeepPosition()
    {
        windows_.clear();
        current_ = ScenarioWindow{};
        dirty_ = false;
    }

    /** The completed timeline, including any partial final window. */
    ScenarioTimeline
    finish() const
    {
        ScenarioTimeline timeline;
        timeline.window_size = window_size_;
        timeline.windows = windows_;
        if (dirty_)
            timeline.windows.push_back(current_);
        return timeline;
    }

  private:
    void
    flush()
    {
        windows_.push_back(current_);
        current_ = ScenarioWindow{};
        dirty_ = false;
    }

    std::uint32_t window_size_;
    Cycle cursor_ = 0;
    ScenarioWindow current_{};
    bool dirty_ = false;
    std::vector<ScenarioWindow> windows_;
};

} // namespace sipre

#endif // SIPRE_FRONTEND_SCENARIO_TIMELINE_HPP
