#include "frontend/frontend.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hpp"

namespace sipre
{

namespace
{

constexpr Addr
lineOf(Addr addr)
{
    return addr & ~Addr{63};
}

/** Is the branch's target known by the time it is decoded? */
bool
targetKnownAtDecode(const TraceInstruction &br)
{
    switch (br.cls) {
      case InstClass::kCondBranch:
      case InstClass::kDirectJump:
      case InstClass::kCall:
      case InstClass::kReturn: // the RAS supplies the target
        return true;
      default:
        return false;
    }
}

} // namespace

DecoupledFrontEnd::DecoupledFrontEnd(const FrontendConfig &config,
                                     const Trace &trace,
                                     MemoryHierarchy &memory,
                                     DecodeQueue &decode_queue)
    : config_(config), trace_(trace), memory_(memory),
      decode_queue_(decode_queue), unit_(config.branch),
      ftq_(config.ftq_entries)
{
    SIPRE_ASSERT(config_.ftq_entries >= 1, "FTQ needs at least one entry");
    SIPRE_ASSERT(config_.max_block_instrs >= 1, "block cap must be >= 1");
    if (config_.itlb)
        itlb_ = std::make_unique<Tlb>(config_.itlb_config);
    // A shadow walk emits at most two lines per block, so this bound
    // makes the wrong-path scratch allocation-free from the first stall.
    wrong_path_lines_.reserve(
        2 * std::min<std::size_t>(config_.ftq_entries,
                                  config_.wrong_path_depth) +
        2);
    if (const char *cc = std::getenv("SIPRE_FRONTEND_CROSSCHECK"))
        crosscheck_ = cc[0] != '\0' && !(cc[0] == '0' && cc[1] == '\0');
}

void
DecoupledFrontEnd::tick(Cycle now)
{
    drainCompletions(now);
    deliverToDecode(now);
    allocateBlocks(now);
    runAheadWalk(now);
    issueLineFetches(now);
    issueWrongPathFetches(now);
    classifyCycle(now);
    if (crosscheck_)
        crosscheckCounters();
}

void
DecoupledFrontEnd::crosscheckCounters() const
{
    std::size_t unready = 0, done_uncounted = 0;
    std::size_t not_issued = 0, tlb_waiting = 0;
    for (std::size_t pos = 0; pos < ftq_.size(); ++pos) {
        const FtqEntry &entry = ftq_.at(pos);
        if (!entry.fetchDone())
            ++unready;
        else if (!entry.counted_waiting)
            ++done_uncounted;
        for (std::uint8_t i = 0; i < entry.num_lines; ++i) {
            if (entry.line_state[i] == LineState::kNotIssued)
                ++not_issued;
            else if (entry.line_state[i] == LineState::kWaitingTlb)
                ++tlb_waiting;
        }
    }
    SIPRE_ASSERT(unready == unready_entries_,
                 "unready_entries_ diverged from the FTQ scan");
    SIPRE_ASSERT(done_uncounted == done_uncounted_,
                 "done_uncounted_ diverged from the FTQ scan");
    SIPRE_ASSERT(not_issued == not_issued_lines_,
                 "not_issued_lines_ diverged from the FTQ scan");
    SIPRE_ASSERT(tlb_waiting == tlb_waiting_lines_,
                 "tlb_waiting_lines_ diverged from the FTQ scan");
}

Cycle
DecoupledFrontEnd::nextEventCycle(Cycle now) const
{
    Cycle next = kNoCycle;

    if (!ftq_.empty() && !decode_queue_.full()) {
        const FtqEntry &head = ftq_.front();
        // Deliverable instructions at the head, or a fresh head whose
        // promotion bookkeeping (became_head_cycle, the Fig. 11 partial
        // counter) is still pending: deliverToDecode acts next cycle.
        if (head.fetchDone() || head.became_head_cycle == kNoCycle)
            return now + 1;
    }

    if (!ftq_.full() && stall_ == StallReason::kNone &&
        fetch_index_ < trace_.size()) {
        return now + 1; // allocateBlocks makes progress every cycle
    }

    // An unissued line retries every cycle (port backpressure implies a
    // non-empty L1I queue, which reports on its own).
    if (not_issued_lines_ > 0)
        return now + 1;
    if (tlb_waiting_lines_ > 0) {
        for (std::size_t pos = 0; pos < ftq_.size(); ++pos) {
            const FtqEntry &entry = ftq_.at(pos);
            for (std::uint8_t i = 0; i < entry.num_lines; ++i) {
                if (entry.line_state[i] == LineState::kWaitingTlb) {
                    next = std::min(
                        next, std::max(now + 1, entry.issue_ready[i]));
                }
            }
        }
    }

    if (stall_ != StallReason::kNone && config_.wrong_path_fetch &&
        wrong_path_next_ < wrong_path_lines_.size()) {
        return now + 1; // shadow-walk drain continues
    }

    // The observer run-ahead walk advances state every tick it can
    // progress. A blocked walk re-probes with frozen predictor state
    // (shadowProbe is side-effect-free), so it provably cannot change
    // anything until a state-mutating event — which forces a tick of
    // its own — and contributes no event here.
    if (walkCanProgress())
        return now + 1;
    return next;
}

bool
DecoupledFrontEnd::walkCanProgress() const
{
    if (observer_ == nullptr || stall_ != StallReason::kNone ||
        walk_blocked_) {
        return false;
    }
    const std::uint64_t start = std::max(observe_index_, fetch_index_);
    if (start >= trace_.size())
        return false;
    const std::uint64_t limit =
        fetch_index_ + std::uint64_t{observer_lookahead_blocks_} *
                           config_.max_block_instrs;
    return start < limit;
}

void
DecoupledFrontEnd::runAheadWalk(Cycle now)
{
    // Walk the region a deeper FTQ would cover: up to lookahead blocks
    // past the fetch point, validated at every branch against what the
    // prediction structures would actually predict. The trace is the
    // committed path, so a branch the predictor agrees on keeps the
    // walk on-path; the first disagreement is where real fetch-ahead
    // would diverge, and the walk blocks there until predictor state
    // changes (allocation, resolve, or stall repair re-probes it).
    if (observer_ == nullptr || stall_ != StallReason::kNone)
        return;
    if (observe_index_ < fetch_index_)
        observe_index_ = fetch_index_;
    if (observe_index_ >= trace_.size())
        return;
    // A blocked walk re-probes its branch: predictor state may have
    // mutated earlier this tick (allocation, resolve, stall repair).
    if (walk_blocked_)
        walk_blocked_ = !probeAgreesAt(observe_index_);
    if (walk_blocked_)
        return;
    const std::uint64_t limit =
        fetch_index_ + std::uint64_t{observer_lookahead_blocks_} *
                           config_.max_block_instrs;
    auto report = [this, now](Addr line) {
        if (line != observer_last_line_) {
            observer_last_line_ = line;
            observer_->onUpcomingLine(line, now);
        }
    };
    for (std::uint32_t b = 0; b < observer_blocks_per_cycle_; ++b) {
        if (observe_index_ >= trace_.size() || observe_index_ >= limit)
            return;
        for (std::uint32_t k = 0; k < config_.max_block_instrs; ++k) {
            if (observe_index_ >= trace_.size() ||
                observe_index_ >= limit) {
                return;
            }
            const TraceInstruction &inst = trace_[observe_index_];
            report(lineOf(inst.pc));
            report(lineOf(inst.pc + inst.size - 1));
            if (inst.isBranch()) {
                if (!probeAgreesAt(observe_index_)) {
                    walk_blocked_ = true;
                    return;
                }
                ++observe_index_;
                break; // a block ends at its branch
            }
            ++observe_index_;
        }
    }
}

bool
DecoupledFrontEnd::probeAgreesAt(std::uint64_t index)
{
    const TraceInstruction &inst = trace_[index];
    if (!inst.isBranch())
        return true;
    const auto pred = unit_.shadowProbe(inst.pc);
    if (!pred.has_value())
        return !inst.taken; // BTB miss: fetch-ahead falls through
    if (pred->taken != inst.taken)
        return false;
    return !inst.taken || pred->target == inst.target;
}

void
DecoupledFrontEnd::accountSkippedCycles(Cycle count)
{
    if (count == 0)
        return;
    if (ftq_.empty()) {
        stats_.ftq_empty_cycles += count;
        if (timeline_) {
            timeline_->record(stall_ != StallReason::kNone
                                  ? FtqScenario::kRedirect
                                  : FtqScenario::kEmpty,
                              count);
        }
        return;
    }
    // Mirrors classifyCycle() on a frozen FTQ: no entry changes fetch
    // state during a skipped span, so the per-entry waiting flags were
    // already latched by the last real tick and only the per-cycle
    // counters advance.
    if (ftq_.front().fetchDone()) {
        stats_.scenario1_cycles += count;
        if (timeline_)
            timeline_->record(FtqScenario::kShootThrough, count);
        return;
    }
    stats_.head_stall_cycles += count;
    // The head is not fetch-done, so it is one of the unready entries;
    // any second unready entry is a scenario-3 shadow stall.
    const bool any_other_unready = unready_entries_ > 1;
    if (any_other_unready)
        stats_.scenario3_cycles += count;
    else
        stats_.scenario2_cycles += count;
    if (timeline_) {
        timeline_->record(any_other_unready ? FtqScenario::kShadowStall
                                            : FtqScenario::kStallingHead,
                          count);
    }
}

void
DecoupledFrontEnd::issueWrongPathFetches(Cycle now)
{
    if (stall_ == StallReason::kNone || !config_.wrong_path_fetch)
        return;
    // Drain the shadow walk one line per cycle: the wrong path shares
    // the FDP's fetch engine, it does not get extra bandwidth.
    if (wrong_path_next_ >= wrong_path_lines_.size() ||
        !memory_.ifetchCanAccept()) {
        return;
    }
    memory_.issueIPrefetch(wrong_path_lines_[wrong_path_next_++], now);
    ++stats_.wrong_path_prefetches;
}

void
DecoupledFrontEnd::shadowWalk(Addr start_pc, std::size_t max_blocks)
{
    // Follow the *predicted* path from start_pc using only state the
    // front-end actually has (BTB, direction predictor, RAS top): this
    // is what the machine would fetch while it does not yet know the
    // prediction was wrong. Instructions are probed at 4-byte slots, as
    // in the fixed-width ISA the traces model.
    wrong_path_lines_.clear();
    wrong_path_next_ = 0;
    Addr pc = start_pc;
    for (std::size_t b = 0; b < max_blocks; ++b) {
        const Addr line = pc & ~Addr{63};
        if (wrong_path_lines_.empty() || wrong_path_lines_.back() != line)
            wrong_path_lines_.push_back(line);
        Addr next = pc + Addr{config_.max_block_instrs} * 4;
        Addr last_byte = next - 1;
        for (std::uint32_t k = 0; k < config_.max_block_instrs; ++k) {
            const Addr cur = pc + Addr{k} * 4;
            const auto pred = unit_.shadowProbe(cur);
            if (pred.has_value()) {
                next = pred->taken ? pred->target : cur + 4;
                last_byte = cur + 3; // block ends at the branch
                break;
            }
        }
        const Addr end_line = last_byte & ~Addr{63};
        if (end_line != line && wrong_path_lines_.back() != end_line)
            wrong_path_lines_.push_back(end_line);
        pc = next;
    }
}

void
DecoupledFrontEnd::drainCompletions(Cycle now)
{
    auto &completed = memory_.ifetchCompleted();
    for (const MemRequest &req : completed) {
        inflight_lines_.erase(req.line_addr);
        for (std::size_t pos = 0; pos < ftq_.size(); ++pos) {
            FtqEntry &entry = ftq_.at(pos);
            bool touched = false;
            for (std::uint8_t i = 0; i < entry.num_lines; ++i) {
                if (entry.lines[i] == req.line_addr &&
                    entry.line_state[i] == LineState::kInFlight) {
                    entry.line_state[i] = LineState::kReady;
                    touched = true;
                }
            }
            if (touched && entry.fetchDone() &&
                entry.fetch_complete_cycle == kNoCycle) {
                // The unique became-fetch-done transition: line states
                // only ever move towards kReady, so this fires exactly
                // once per entry.
                --unready_entries_;
                ++done_uncounted_;
                entry.fetch_complete_cycle = now;
                const double latency =
                    static_cast<double>(now - entry.alloc_cycle);
                if (pos == 0 || entry.became_head_cycle != kNoCycle) {
                    stats_.head_fetch_latency.add(latency);
                    stats_.head_latency_hist.add(
                        static_cast<std::uint64_t>(latency));
                } else {
                    stats_.nonhead_fetch_latency.add(latency);
                    stats_.nonhead_latency_hist.add(
                        static_cast<std::uint64_t>(latency));
                }
                firePredecode(entry, now);
            }
        }
    }
    completed.clear();
}

void
DecoupledFrontEnd::firePredecode(const FtqEntry &entry, Cycle now)
{
    // The pre-decoder sees the fetched bytes: software prefetches fire
    // here, and (with PFC) a BTB-missed taken branch is corrected here.
    // A software-prefetch target may encode an I-SPY-style coalesced
    // range in its low bits: line-aligned address | (lines - 1).
    auto fire = [this, now](Addr encoded_target) {
        const Addr line = encoded_target & ~Addr{63};
        const Addr lines = (encoded_target & Addr{63}) + 1;
        for (Addr k = 0; k < lines; ++k)
            memory_.issueIPrefetch(line + k * 64, now);
        ++stats_.sw_prefetches_triggered;
    };
    for (std::uint64_t i = entry.first_index;
         i < entry.first_index + entry.count; ++i) {
        const TraceInstruction &inst = trace_[i];
        if (inst.isSwPrefetch())
            fire(inst.target);
        if (triggers_ != nullptr) {
            auto it = triggers_->find(inst.pc);
            if (it != triggers_->end()) {
                for (Addr target : it->second)
                    fire(target);
            }
        }
    }

    if (config_.pfc && stall_ == StallReason::kBtbMissTaken &&
        entry.ends_in_branch &&
        entry.branch_index == stall_branch_index_ &&
        targetKnownAtDecode(trace_[entry.branch_index])) {
        ++stats_.pfc_resumes;
        resumeFromStall(now);
    }
}

void
DecoupledFrontEnd::resumeFromStall(Cycle now)
{
    SIPRE_ASSERT(stall_ != StallReason::kNone, "resume without a stall");
    PendingBranch *pending = pending_branches_.find(stall_branch_index_);
    SIPRE_ASSERT(pending != nullptr,
                 "stalling branch lost its pending record");
    const TraceInstruction &br = trace_[stall_branch_index_];

    unit_.repairHistory(pending->checkpoint, br, /*btb_hit_now=*/true);
    // Make the branch visible to the BTB immediately so tight loops
    // around the same branch hit on re-encounter.
    if (br.taken)
        unit_.btb().update(br.pc, br.target, br.cls);

    if (stall_ == StallReason::kMispredict)
        stats_.stall_cycles_mispredict += now - stall_begin_;
    else
        stats_.stall_cycles_btb_miss += now - stall_begin_;
    stall_ = StallReason::kNone;
    wrong_path_lines_.clear();
    wrong_path_next_ = 0;
    // Restart the observer run-ahead walk at the corrected fetch point.
    observe_index_ = fetch_index_;
    walk_blocked_ = false;
    observer_last_line_ = kNoAddr;
}

void
DecoupledFrontEnd::deliverToDecode(Cycle now)
{
    std::uint32_t budget = config_.fetch_width;
    while (budget > 0 && !ftq_.empty() && !decode_queue_.full()) {
        FtqEntry &head = ftq_.front();
        if (head.became_head_cycle == kNoCycle) {
            head.became_head_cycle = now;
            if (!head.fetchDone() && !head.counted_partial) {
                // Scenario 3 signature: promoted while still fetching.
                head.counted_partial = true;
                ++stats_.partial_head_events;
            }
        }
        if (!head.fetchDone())
            break;

        while (budget > 0 && !decode_queue_.full() &&
               head.delivered < head.count) {
            DecodedUop uop;
            uop.trace_index = head.first_index + head.delivered;
            uop.ready_at = now + config_.decode_latency;
            decode_queue_.push(uop);
            ++head.delivered;
            --budget;
            ++stats_.instructions_delivered;
        }
        delivered_index_ = head.first_index + head.delivered;
        if (head.fullyDelivered()) {
            // Popped entries are always fetch-done; one that was never
            // swept by the classify scan leaves the done-uncounted set.
            if (!head.counted_waiting)
                --done_uncounted_;
            ftq_.pop();
        } else {
            break;
        }
    }
}

void
DecoupledFrontEnd::allocateBlocks(Cycle now)
{
    for (std::uint32_t n = 0; n < config_.blocks_per_cycle; ++n) {
        if (ftq_.full() || stall_ != StallReason::kNone ||
            fetch_index_ >= trace_.size()) {
            return;
        }

        FtqEntry entry;
        entry.first_index = fetch_index_;
        entry.start_pc = trace_[fetch_index_].pc;
        entry.alloc_cycle = now;

        Addr last_byte = entry.start_pc;
        while (fetch_index_ < trace_.size() &&
               entry.count < config_.max_block_instrs) {
            const TraceInstruction &inst = trace_[fetch_index_];
            ++entry.count;
            ++fetch_index_;
            entry.end_pc = inst.pc;
            last_byte = inst.pc + inst.size - 1;

            if (inst.isBranch()) {
                entry.ends_in_branch = true;
                entry.branch_index = fetch_index_ - 1;

                PendingBranch pending;
                pending.checkpoint = unit_.lightCheckpoint();
                pending.pred = unit_.predictAndSpeculate(inst);

                const bool actual_taken = inst.taken;
                const Addr actual_target =
                    actual_taken ? inst.target : inst.nextPc();
                bool wrong =
                    pending.pred.predicted_taken != actual_taken ||
                    (actual_taken &&
                     pending.pred.predicted_target != actual_target);
                if (wrong && config_.oracle_bp) {
                    // Limit-study mode: follow the committed path with
                    // no stall, but keep speculative state consistent
                    // with that path.
                    unit_.repairHistory(pending.checkpoint, inst,
                                        pending.pred.btb_hit);
                    if (inst.taken)
                        unit_.btb().update(inst.pc, inst.target,
                                           inst.cls);
                    wrong = false;
                }
                if (wrong) {
                    pending.stalling = true;
                    if (!pending.pred.btb_hit && actual_taken) {
                        stall_ = StallReason::kBtbMissTaken;
                        ++stats_.btb_miss_stalls;
                    } else {
                        stall_ = StallReason::kMispredict;
                        ++stats_.mispredict_stalls;
                    }
                    stall_branch_index_ = entry.branch_index;
                    stall_begin_ = now;
                    // Fetch-ahead redirects: run-ahead lines reported
                    // beyond this branch are no longer on the machine's
                    // predicted path, so the observer drops what it has
                    // not issued yet.
                    if (observer_ != nullptr)
                        observer_->onRedirect(now);
                    // The hardware keeps fetching down the predicted
                    // (wrong) path until the branch resolves; walk it
                    // with the predictors, bounded by the FTQ space
                    // that remains for wrong-path blocks.
                    if (config_.wrong_path_fetch) {
                        const Addr wrong_pc =
                            pending.pred.predicted_taken
                                ? pending.pred.predicted_target
                                : inst.nextPc();
                        shadowWalk(wrong_pc,
                                   std::min<std::size_t>(
                                       config_.ftq_entries,
                                       config_.wrong_path_depth));
                    }
                }
                pending_branches_.insert(entry.branch_index,
                                         std::move(pending));
                break;
            }
        }

        entry.lines[0] = lineOf(entry.start_pc);
        const Addr end_line = lineOf(last_byte);
        entry.num_lines = 1;
        if (end_line != entry.lines[0]) {
            entry.lines[1] = end_line;
            entry.num_lines = 2;
        }

        ftq_.push(entry);
        // Fresh entries start with every line kNotIssued, so they are
        // never fetch-done on arrival.
        ++unready_entries_;
        not_issued_lines_ += entry.num_lines;
        ++stats_.blocks_allocated;
    }
}

void
DecoupledFrontEnd::issueLineFetches(Cycle now)
{
    // Nothing to issue and no TLB walk to re-check: skip the FTQ scan.
    if (not_issued_lines_ == 0 && tlb_waiting_lines_ == 0)
        return;
    for (std::size_t pos = 0; pos < ftq_.size(); ++pos) {
        FtqEntry &entry = ftq_.at(pos);
        for (std::uint8_t i = 0; i < entry.num_lines; ++i) {
            if (entry.line_state[i] == LineState::kNotIssued &&
                itlb_ != nullptr) {
                const Cycle walk = itlb_->lookup(entry.lines[i]);
                if (walk > 0) {
                    entry.line_state[i] = LineState::kWaitingTlb;
                    entry.issue_ready[i] = now + walk;
                    --not_issued_lines_;
                    ++tlb_waiting_lines_;
                    ++stats_.itlb_walks;
                    continue;
                }
            }
            if (entry.line_state[i] == LineState::kWaitingTlb) {
                if (entry.issue_ready[i] > now)
                    continue;
                entry.line_state[i] = LineState::kNotIssued;
                --tlb_waiting_lines_;
                ++not_issued_lines_;
            }
            if (entry.line_state[i] != LineState::kNotIssued)
                continue;
            const Addr line = entry.lines[i];
            if (std::uint32_t *refs = inflight_lines_.find(line)) {
                // Another FTQ entry already requested this line: merge.
                entry.line_state[i] = LineState::kInFlight;
                --not_issued_lines_;
                ++*refs;
                ++stats_.l1i_fetches_merged;
                continue;
            }
            if (!memory_.ifetchCanAccept())
                return; // port backpressure: retry next cycle
            memory_.issueIFetch(line, now);
            inflight_lines_.insert(line, 1);
            entry.line_state[i] = LineState::kInFlight;
            --not_issued_lines_;
            ++stats_.l1i_fetches_issued;
        }
    }
}

void
DecoupledFrontEnd::classifyCycle(Cycle now)
{
    (void)now;
    if (ftq_.empty()) {
        ++stats_.ftq_empty_cycles;
        if (timeline_) {
            timeline_->record(stall_ != StallReason::kNone
                                  ? FtqScenario::kRedirect
                                  : FtqScenario::kEmpty,
                              1);
        }
        return;
    }

    const FtqEntry &head = ftq_.front();
    if (head.fetchDone()) {
        ++stats_.scenario1_cycles;
        if (timeline_)
            timeline_->record(FtqScenario::kShootThrough, 1);
        return;
    }

    ++stats_.head_stall_cycles;
    // The head is unready here, so every done-but-uncounted entry sits
    // at position >= 1: sweep them into the Fig. 10 event count. The
    // sweep only runs on cycles that follow a new completion, which
    // makes the reference model's every-cycle scan amortized O(1).
    if (done_uncounted_ > 0) {
        for (std::size_t pos = 1; pos < ftq_.size(); ++pos) {
            FtqEntry &entry = ftq_.at(pos);
            if (entry.fetchDone() && !entry.counted_waiting) {
                entry.counted_waiting = true;
                ++stats_.waiting_entry_events;
            }
        }
        done_uncounted_ = 0;
    }
    const bool any_other_unready = unready_entries_ > 1;
    if (any_other_unready)
        ++stats_.scenario3_cycles;
    else
        ++stats_.scenario2_cycles;
    if (timeline_) {
        timeline_->record(any_other_unready ? FtqScenario::kShadowStall
                                            : FtqScenario::kStallingHead,
                          1);
    }
}

void
DecoupledFrontEnd::onBranchDecoded(std::uint64_t trace_index, Cycle now)
{
    if (config_.pfc)
        return; // PFC already corrected at pre-decode
    if (stall_ == StallReason::kBtbMissTaken &&
        stall_branch_index_ == trace_index &&
        targetKnownAtDecode(trace_[trace_index])) {
        resumeFromStall(now);
    }
}

void
DecoupledFrontEnd::onBranchExecuted(std::uint64_t trace_index, Cycle now)
{
    PendingBranch *pending = pending_branches_.find(trace_index);
    if (pending == nullptr)
        return;

    const TraceInstruction &br = trace_[trace_index];
    unit_.resolve(br, pending->pred);

    if (stall_ != StallReason::kNone &&
        stall_branch_index_ == trace_index) {
        resumeFromStall(now);
    }
    pending_branches_.erase(trace_index);
}

} // namespace sipre
