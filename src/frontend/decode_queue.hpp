/**
 * @file
 * The decode queue between the decoupled front-end and the back-end.
 */
#ifndef SIPRE_FRONTEND_DECODE_QUEUE_HPP
#define SIPRE_FRONTEND_DECODE_QUEUE_HPP

#include <cstdint>

#include "util/circular_buffer.hpp"
#include "util/types.hpp"

namespace sipre
{

/** One instruction in flight between fetch and dispatch. */
struct DecodedUop
{
    std::uint64_t trace_index = 0;
    Cycle ready_at = 0; ///< earliest cycle the back-end may dispatch it
};

/** Bounded FIFO between front-end (producer) and back-end (consumer). */
using DecodeQueue = CircularBuffer<DecodedUop>;

} // namespace sipre

#endif // SIPRE_FRONTEND_DECODE_QUEUE_HPP
