/**
 * @file
 * Front-end characterization counters: everything needed to regenerate
 * the paper's Figures 8-11 and the Scenario 1/2/3 taxonomy of Sec. III.
 */
#ifndef SIPRE_FRONTEND_FRONTEND_STATS_HPP
#define SIPRE_FRONTEND_FRONTEND_STATS_HPP

#include <cstdint>

#include "util/statistics.hpp"

namespace sipre
{

/** Counters maintained by the decoupled front-end. */
struct FrontendStats
{
    // --- taxonomy (Sec. III), counted per cycle with a non-empty FTQ ---
    std::uint64_t scenario1_cycles = 0; ///< shoot-through: head ready
    std::uint64_t scenario2_cycles = 0; ///< head stalling, others complete
    std::uint64_t scenario3_cycles = 0; ///< head + followers stalling
    std::uint64_t ftq_empty_cycles = 0;

    // --- Fig. 9: stalls incurred by the head entry ----------------------
    std::uint64_t head_stall_cycles = 0;

    // --- Fig. 10: entries forced to wait on a stalling head -------------
    std::uint64_t waiting_entry_events = 0;

    // --- Fig. 11: entries promoted to head before completing fetch ------
    std::uint64_t partial_head_events = 0;

    // --- Fig. 8: fetch latency split by where the entry completed -------
    RunningStat head_fetch_latency;     ///< completed at (or as) head
    RunningStat nonhead_fetch_latency;  ///< completed behind the head

    /** Latency distributions (8-cycle buckets, 32 buckets + overflow). */
    Histogram head_latency_hist{8, 32};
    Histogram nonhead_latency_hist{8, 32};

    // --- L1-I traffic (Sec. V-B claim) -----------------------------------
    std::uint64_t l1i_fetches_issued = 0;
    std::uint64_t l1i_fetches_merged = 0; ///< FTQ same-line aliasing

    // --- general front-end activity --------------------------------------
    std::uint64_t blocks_allocated = 0;
    std::uint64_t instructions_delivered = 0;
    std::uint64_t sw_prefetches_triggered = 0;

    // --- stall machinery ---------------------------------------------------
    std::uint64_t mispredict_stalls = 0;
    std::uint64_t btb_miss_stalls = 0;
    std::uint64_t stall_cycles_mispredict = 0;
    std::uint64_t stall_cycles_btb_miss = 0;
    std::uint64_t pfc_resumes = 0;
    std::uint64_t wrong_path_prefetches = 0;
    std::uint64_t itlb_walks = 0;
};

} // namespace sipre

#endif // SIPRE_FRONTEND_FRONTEND_STATS_HPP
