/**
 * @file
 * The HTTP face of the job subsystem, designed to plug into
 * ServiceServer's handler chain: POST /jobs (submit a sweep), GET
 * /jobs (list), GET /jobs/<id> (status/progress), GET /jobs/<id>/result
 * (aggregated results), DELETE /jobs/<id> (cancel), plus a
 * Prometheus-style metrics fragment for the shared /metrics endpoint.
 */
#ifndef SIPRE_JOBS_HTTP_HPP
#define SIPRE_JOBS_HTTP_HPP

#include <optional>
#include <string>

#include "jobs/manager.hpp"
#include "service/http.hpp"

namespace sipre::jobs
{

/** See file comment. Stateless beyond the manager reference. */
class JobHttpHandler
{
  public:
    explicit JobHttpHandler(JobManager &manager) : manager_(manager) {}

    /**
     * Handle a /jobs request; nullopt for any other path (so the
     * server falls through to its own routes / 404).
     */
    std::optional<service::http::Response>
    handle(const service::http::Request &request);

    /** Job counters/gauges as /metrics text (sipre_jobs_* family). */
    std::string metricsText() const;

  private:
    JobManager &manager_;
};

/** One job's progress as a JSON object (shared by status and list). */
std::string jobProgressToJson(const JobProgress &progress);

} // namespace sipre::jobs

#endif // SIPRE_JOBS_HTTP_HPP
