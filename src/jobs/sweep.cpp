#include "jobs/sweep.hpp"

#include <algorithm>

#include "core/json_io.hpp"
#include "trace/synth/workload.hpp"

namespace sipre::jobs
{

std::size_t
SweepSpec::shardCount() const
{
    const std::size_t workload_dim = mix.empty() ? workloads.size() : 1;
    return workload_dim * cores.size() * ftq.size() * modes.size() *
           predictors.size() * hw_prefetchers.size() * pfc.size() *
           ghr_filter.size() * wrong_path.size() *
           distance_providers.size();
}

namespace
{

/**
 * Collect the scalar-or-array field `value` into `items` through
 * `parseOne`, rejecting duplicates (they would create shards with
 * identical canonical keys) and empty arrays.
 */
template <typename T, typename ParseOne>
bool
parseAxis(const std::string &field, const JsonValue &value,
          std::vector<T> &items, ParseOne &&parseOne, std::string &error)
{
    items.clear();
    const auto add = [&](const JsonValue &element) {
        T parsed{};
        if (!parseOne(element, parsed))
            return false;
        if (std::find(items.begin(), items.end(), parsed) != items.end()) {
            error = "duplicate value in field '" + field + "'";
            return false;
        }
        items.push_back(parsed);
        return true;
    };
    if (value.kind == JsonValue::Kind::kArray) {
        if (value.array.empty()) {
            error = "field '" + field + "' must not be an empty array";
            return false;
        }
        for (const auto &element : value.array) {
            if (!add(element))
                return false;
        }
        return true;
    }
    return add(value);
}

} // namespace

bool
parseSweepSpec(const std::string &body, SweepSpec &out, std::string &error)
{
    JsonValue doc;
    if (!parseJson(body, doc, error)) {
        error = "invalid JSON: " + error;
        return false;
    }
    if (!doc.isObject()) {
        error = "sweep spec must be a JSON object";
        return false;
    }

    out = SweepSpec{};
    bool have_workloads = false;
    bool have_mix = false;
    bool have_cores = false;
    for (const auto &[key, value] : doc.object) {
        if (key == "workloads") {
            have_workloads = true;
            if (value.isString() && value.string == "all") {
                out.workloads.clear();
                for (const auto &spec : synth::cvp1LikeSuite())
                    out.workloads.push_back(spec.name);
                continue;
            }
            if (!parseAxis(
                    key, value, out.workloads,
                    [&](const JsonValue &v, std::string &name) {
                        if (!v.isString()) {
                            error = "field 'workloads' must be \"all\" or "
                                    "an array of workload names";
                            return false;
                        }
                        name = v.string;
                        return true;
                    },
                    error))
                return false;
        } else if (key == "mix") {
            have_mix = true;
            // Duplicates are legitimate here (a mix can co-run two
            // copies of one workload next to a third), so this does
            // not go through parseAxis.
            if (!value.isArray() || value.array.empty() ||
                value.array.size() > service::kMaxCores) {
                error = "field 'mix' must be an array of 1 to " +
                        std::to_string(service::kMaxCores) +
                        " workload names";
                return false;
            }
            out.mix.clear();
            for (const auto &element : value.array) {
                if (!element.isString()) {
                    error = "field 'mix' must be an array of workload "
                            "names";
                    return false;
                }
                out.mix.push_back(element.string);
            }
        } else if (key == "cores") {
            have_cores = true;
            if (!parseAxis(
                    key, value, out.cores,
                    [&](const JsonValue &v, std::uint32_t &n_cores) {
                        std::uint64_t n = 0;
                        if (!jsonToUint(v, n) || n < 1 ||
                            n > service::kMaxCores) {
                            error = "field 'cores' values must be "
                                    "integers in [1, " +
                                    std::to_string(service::kMaxCores) +
                                    "]";
                            return false;
                        }
                        n_cores = static_cast<std::uint32_t>(n);
                        return true;
                    },
                    error))
                return false;
        } else if (key == "instructions") {
            std::uint64_t n = 0;
            if (!jsonToUint(value, n)) {
                error =
                    "field 'instructions' must be a non-negative integer";
                return false;
            }
            if (n < service::kMinInstructions ||
                n > service::kMaxInstructions) {
                error = "field 'instructions' out of range [" +
                        std::to_string(service::kMinInstructions) + ", " +
                        std::to_string(service::kMaxInstructions) + "]";
                return false;
            }
            out.instructions = n;
        } else if (key == "ftq") {
            if (!parseAxis(
                    key, value, out.ftq,
                    [&](const JsonValue &v, std::uint32_t &depth) {
                        std::uint64_t n = 0;
                        if (!jsonToUint(v, n) ||
                            n < service::kMinFtqEntries ||
                            n > service::kMaxFtqEntries) {
                            error =
                                "field 'ftq' values must be integers in "
                                "[" +
                                std::to_string(service::kMinFtqEntries) +
                                ", " +
                                std::to_string(service::kMaxFtqEntries) +
                                "]";
                            return false;
                        }
                        depth = static_cast<std::uint32_t>(n);
                        return true;
                    },
                    error))
                return false;
        } else if (key == "mode") {
            if (!parseAxis(
                    key, value, out.modes,
                    [&](const JsonValue &v, SimMode &mode) {
                        if (!v.isString() || !parseSimMode(v.string)) {
                            error = "field 'mode' values must be one of " +
                                    std::string(kSimModeChoices);
                            return false;
                        }
                        mode = *parseSimMode(v.string);
                        return true;
                    },
                    error))
                return false;
        } else if (key == "predictor") {
            if (!parseAxis(
                    key, value, out.predictors,
                    [&](const JsonValue &v, DirectionPredictorKind &kind) {
                        if (!v.isString() || !parsePredictor(v.string)) {
                            error =
                                "field 'predictor' values must be one of " +
                                std::string(kPredictorChoices);
                            return false;
                        }
                        kind = *parsePredictor(v.string);
                        return true;
                    },
                    error))
                return false;
        } else if (key == "hw_prefetcher") {
            if (!parseAxis(
                    key, value, out.hw_prefetchers,
                    [&](const JsonValue &v, IPrefetcherKind &kind) {
                        if (!v.isString() || !parseHwPrefetcher(v.string)) {
                            error = "field 'hw_prefetcher' values must be "
                                    "one of " +
                                    std::string(kHwPrefetcherChoices);
                            return false;
                        }
                        kind = *parseHwPrefetcher(v.string);
                        return true;
                    },
                    error))
                return false;
        } else if (key == "distance_provider") {
            if (!parseAxis(
                    key, value, out.distance_providers,
                    [&](const JsonValue &v, DistanceProviderKind &kind) {
                        if (!v.isString() ||
                            !parseDistanceProvider(v.string)) {
                            error = "field 'distance_provider' values "
                                    "must be one of " +
                                    std::string(kDistanceProviderChoices);
                            return false;
                        }
                        kind = *parseDistanceProvider(v.string);
                        return true;
                    },
                    error))
                return false;
        } else if (key == "pfc" || key == "ghr_filter" ||
                   key == "wrong_path") {
            std::vector<bool> *axis = key == "pfc" ? &out.pfc
                                      : key == "ghr_filter"
                                          ? &out.ghr_filter
                                          : &out.wrong_path;
            if (!parseAxis(
                    key, value, *axis,
                    [&](const JsonValue &v, bool &flag) {
                        if (!v.isBool()) {
                            error = "field '" + key +
                                    "' values must be booleans";
                            return false;
                        }
                        flag = v.boolean;
                        return true;
                    },
                    error))
                return false;
        } else {
            error = "unknown field '" + key + "'";
            return false;
        }
    }
    if (have_mix) {
        if (have_workloads) {
            error = "fields 'workloads' and 'mix' are mutually exclusive";
            return false;
        }
        if (have_cores) {
            error = "field 'cores' is implied by the 'mix' length";
            return false;
        }
        out.cores = {static_cast<std::uint32_t>(out.mix.size())};
    } else if (!have_workloads || out.workloads.empty()) {
        error = "missing required field 'workloads'";
        return false;
    }

    std::vector<std::string> all_names = out.workloads;
    all_names.insert(all_names.end(), out.mix.begin(), out.mix.end());
    for (const auto &name : all_names) {
        bool known = false;
        for (const auto &spec : synth::cvp1LikeSuite()) {
            if (spec.name == name) {
                known = true;
                break;
            }
        }
        if (!known) {
            error = "unknown workload '" + name + "'";
            return false;
        }
    }

    if (out.shardCount() > kMaxShardsPerJob) {
        error = "sweep expands to " + std::to_string(out.shardCount()) +
                " shards (limit " + std::to_string(kMaxShardsPerJob) +
                ")";
        return false;
    }
    return true;
}

std::string
sweepSpecToJson(const SweepSpec &spec)
{
    std::vector<std::uint64_t> ftq(spec.ftq.begin(), spec.ftq.end());
    std::vector<std::string> modes;
    for (const SimMode mode : spec.modes)
        modes.push_back(simModeName(mode));
    std::vector<std::string> predictors;
    for (const DirectionPredictorKind kind : spec.predictors)
        predictors.push_back(predictorName(kind));
    std::vector<std::string> prefetchers;
    for (const IPrefetcherKind kind : spec.hw_prefetchers)
        prefetchers.push_back(hwPrefetcherName(kind));
    std::vector<std::string> providers;
    for (const DistanceProviderKind kind : spec.distance_providers)
        providers.push_back(distanceProviderName(kind));

    std::string out;
    if (spec.mix.empty()) {
        std::vector<std::uint64_t> cores(spec.cores.begin(),
                                         spec.cores.end());
        out = "{\"workloads\":" + jsonStringArray(spec.workloads);
        out += ",\"cores\":" + jsonUIntArray(cores);
    } else {
        out = "{\"mix\":" + jsonStringArray(spec.mix);
    }
    out += ",\"instructions\":" + std::to_string(spec.instructions);
    out += ",\"ftq\":" + jsonUIntArray(ftq);
    out += ",\"mode\":" + jsonStringArray(modes);
    out += ",\"predictor\":" + jsonStringArray(predictors);
    out += ",\"hw_prefetcher\":" + jsonStringArray(prefetchers);
    out += ",\"pfc\":" + jsonBoolArray(spec.pfc);
    out += ",\"ghr_filter\":" + jsonBoolArray(spec.ghr_filter);
    out += ",\"wrong_path\":" + jsonBoolArray(spec.wrong_path);
    out += ",\"distance_provider\":" + jsonStringArray(providers);
    out += '}';
    return out;
}

std::vector<service::SimRequest>
expandSweep(const SweepSpec &spec)
{
    // The workload/core dimension first: (workload, cores) pairs for
    // homogeneous sweeps, or the single fixed mix. A homogeneous mix
    // normalizes to the empty-mix spelling so both share canonical keys
    // with the equivalent /simulate request.
    std::vector<service::SimRequest> machines;
    if (!spec.mix.empty()) {
        service::SimRequest machine;
        machine.workload = spec.mix.front();
        machine.cores = static_cast<std::uint32_t>(spec.mix.size());
        if (!std::all_of(spec.mix.begin(), spec.mix.end(),
                         [&](const std::string &w) {
                             return w == spec.mix.front();
                         }))
            machine.mix = spec.mix;
        machines.push_back(std::move(machine));
    } else {
        for (const auto &workload : spec.workloads) {
            for (const std::uint32_t cores : spec.cores) {
                service::SimRequest machine;
                machine.workload = workload;
                machine.cores = cores;
                machines.push_back(std::move(machine));
            }
        }
    }

    std::vector<service::SimRequest> shards;
    shards.reserve(spec.shardCount());
    for (const service::SimRequest &machine : machines) {
        for (const std::uint32_t ftq : spec.ftq) {
            for (const SimMode mode : spec.modes) {
                for (const DirectionPredictorKind predictor :
                     spec.predictors) {
                    for (const IPrefetcherKind prefetcher :
                         spec.hw_prefetchers) {
                        for (const bool pfc : spec.pfc) {
                            for (const bool ghr : spec.ghr_filter) {
                                for (const bool wp : spec.wrong_path) {
                                    for (const DistanceProviderKind dp :
                                         spec.distance_providers) {
                                        service::SimRequest request =
                                            machine;
                                        request.instructions =
                                            spec.instructions;
                                        request.ftq_entries = ftq;
                                        request.mode = mode;
                                        request.predictor = predictor;
                                        request.hw_prefetcher =
                                            prefetcher;
                                        request.pfc = pfc;
                                        request.ghr_filter = ghr;
                                        request.wrong_path = wp;
                                        request.distance_provider = dp;
                                        shards.push_back(request);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return shards;
}

} // namespace sipre::jobs
