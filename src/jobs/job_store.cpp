#include "jobs/job_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "core/json_io.hpp"
#include "util/fsio.hpp"

namespace sipre::jobs
{

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    }
    return "unknown";
}

bool
jobStateIsTerminal(JobState state)
{
    return state == JobState::kCompleted || state == JobState::kFailed ||
           state == JobState::kCancelled;
}

std::size_t
JobRecord::doneShards() const
{
    return static_cast<std::size_t>(
        std::count_if(shards.begin(), shards.end(), [](const auto &s) {
            return s.state == ShardState::kDone;
        }));
}

std::size_t
JobRecord::failedShards() const
{
    return static_cast<std::size_t>(
        std::count_if(shards.begin(), shards.end(), [](const auto &s) {
            return s.state == ShardState::kFailed;
        }));
}

std::size_t
JobRecord::cachedShards() const
{
    return static_cast<std::size_t>(
        std::count_if(shards.begin(), shards.end(), [](const auto &s) {
            return s.state == ShardState::kDone && s.cached;
        }));
}

std::string
jobRecordPath(const std::string &dir, std::uint64_t id)
{
    return dir + "/job_" + std::to_string(id) + ".sipre";
}

namespace
{

const char *
shardStateToken(ShardState state)
{
    switch (state) {
    case ShardState::kPending: return "pending";
    // Running shards have no completed result to persist; after a crash
    // they must be re-executed, which is what pending means.
    case ShardState::kRunning: return "pending";
    case ShardState::kDone: return "done";
    case ShardState::kFailed: return "failed";
    }
    return "pending";
}

bool
parseShardState(const std::string &token, ShardState &state)
{
    if (token == "pending") {
        state = ShardState::kPending;
    } else if (token == "running") {
        // Tolerated on load (a foreign writer may persist it); maps to
        // pending for the same reason saves never emit it.
        state = ShardState::kPending;
    } else if (token == "done") {
        state = ShardState::kDone;
    } else if (token == "failed") {
        state = ShardState::kFailed;
    } else {
        return false;
    }
    return true;
}

bool
parseJobState(const std::string &token, JobState &state)
{
    for (const JobState candidate :
         {JobState::kQueued, JobState::kRunning, JobState::kCompleted,
          JobState::kFailed, JobState::kCancelled}) {
        if (token == jobStateName(candidate)) {
            state = candidate;
            return true;
        }
    }
    return false;
}

} // namespace

bool
saveJobRecord(const std::string &dir, const JobRecord &record)
{
    const std::string path = jobRecordPath(dir, record.id);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp);
        if (!os)
            return false;
        // A non-terminal job persists as queued: after a restart its
        // unfinished shards must be picked up again.
        const JobState state = record.state == JobState::kRunning
                                   ? JobState::kQueued
                                   : record.state;
        os << "sipre-job " << kJobRecordVersion << '\n';
        os << record.id << ' ' << jobStateName(state) << '\n';
        os << sweepSpecToJson(record.spec) << '\n';
        os << record.shards.size() << '\n';
        for (std::size_t i = 0; i < record.shards.size(); ++i) {
            const ShardRecord &shard = record.shards[i];
            os << i << ' ' << shardStateToken(shard.state) << ' '
               << (shard.cached ? 1 : 0) << ' '
               << jsonDouble(shard.latency_us) << ' ' << shard.key
               << '\n';
            if (shard.state == ShardState::kDone)
                writeSimResultText(os, shard.result);
            else if (shard.state == ShardState::kFailed)
                os << jsonEscape(shard.error) << '\n';
        }
        if (!os)
            return false;
    }
    // Durable publish: fsync the tmp file and the jobs directory
    // around the atomic rename. Rename alone is atomic against
    // concurrent readers but not against power loss — the completed
    // shards this record carries must survive a crash.
    return fsio::commitFile(tmp, path);
}

bool
loadJobRecord(const std::string &path, JobRecord &record)
{
    std::ifstream is(path);
    if (!is)
        return false;

    std::string magic;
    int version = 0;
    is >> magic >> version;
    if (magic != "sipre-job" || version != kJobRecordVersion)
        return false;

    record = JobRecord{};
    std::string state_token;
    is >> record.id >> state_token;
    if (!is || !parseJobState(state_token, record.state))
        return false;

    std::string spec_json;
    is >> std::ws;
    if (!std::getline(is, spec_json))
        return false;
    std::string error;
    if (!parseSweepSpec(spec_json, record.spec, error))
        return false;

    std::size_t shard_count = 0;
    is >> shard_count;
    if (!is)
        return false;
    const std::vector<service::SimRequest> requests =
        expandSweep(record.spec);
    if (shard_count != requests.size())
        return false;

    record.shards.resize(shard_count);
    std::size_t done = 0;
    std::size_t failed = 0;
    for (std::size_t i = 0; i < shard_count; ++i) {
        ShardRecord &shard = record.shards[i];
        shard.request = requests[i];

        std::size_t index = 0;
        std::string shard_state;
        int cached = 0;
        is >> index >> shard_state >> cached >> shard.latency_us >>
            shard.key;
        if (!is || index != i ||
            !parseShardState(shard_state, shard.state) ||
            (cached != 0 && cached != 1))
            return false;
        shard.cached = cached == 1;
        // The persisted key must match the spec's expansion: a mismatch
        // means the expansion contract changed (or the file is forged)
        // and the stored per-shard results can't be trusted.
        if (shard.key != requests[i].canonicalKey())
            return false;

        if (shard.state == ShardState::kDone) {
            if (!readSimResultText(is, shard.result))
                return false;
            ++done;
        } else if (shard.state == ShardState::kFailed) {
            is >> std::ws;
            if (!std::getline(is, shard.error) || shard.error.empty())
                return false;
            ++failed;
        } else {
            shard.cached = false;
            shard.latency_us = 0.0;
        }
    }

    // A terminal state must be consistent with the shards it claims.
    if (record.state == JobState::kCompleted &&
        done + failed != shard_count)
        return false;
    if (!jobStateIsTerminal(record.state) && done + failed == shard_count)
        record.state = failed == 0 ? JobState::kCompleted
                                   : JobState::kFailed;
    return true;
}

std::vector<std::string>
listJobRecordPaths(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("job_", 0) == 0 &&
            name.size() > 10 /* job_*.sipre */ &&
            name.substr(name.size() - 6) == ".sipre")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace sipre::jobs
