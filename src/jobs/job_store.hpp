/**
 * @file
 * The persistent job record: one text file per job holding the sweep
 * spec, per-shard status, and completed shard results (in the shared
 * campaign text format). Records are checkpointed atomically
 * (write-temp + rename) as shards finish, so a killed daemon loses at
 * most the shards that were mid-simulation — and those reload as
 * pending, never as silently lost or silently done.
 */
#ifndef SIPRE_JOBS_JOB_STORE_HPP
#define SIPRE_JOBS_JOB_STORE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/sim_result.hpp"
#include "jobs/sweep.hpp"

namespace sipre::jobs
{

/** Per-shard lifecycle. kRunning is in-memory only: it persists as
 *  pending, which is exactly the resume-after-crash semantic. */
enum class ShardState : std::uint8_t {
    kPending,
    kRunning,
    kDone,
    kFailed
};

/** Job lifecycle. Terminal states: completed, failed, cancelled. */
enum class JobState : std::uint8_t {
    kQueued,
    kRunning,
    kCompleted,
    kFailed,
    kCancelled
};

const char *jobStateName(JobState state);
bool jobStateIsTerminal(JobState state);

/** One (workload, config) point of a sweep. */
struct ShardRecord
{
    service::SimRequest request; ///< from the spec's expansion
    std::string key;             ///< request.canonicalKey(), persisted
    ShardState state = ShardState::kPending;
    bool cached = false;     ///< served by an engine cache tier
    double latency_us = 0.0; ///< engine-reported submit latency
    SimResult result;        ///< valid when kDone
    std::string error;       ///< set when kFailed (JSON-escaped form)
};

/** A whole job: identity, lifecycle, spec, and its shards. */
struct JobRecord
{
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    SweepSpec spec;
    std::vector<ShardRecord> shards;

    std::size_t doneShards() const;
    std::size_t failedShards() const;
    std::size_t cachedShards() const;
};

/** Bumped whenever the record layout changes; stale files are rejected. */
inline constexpr int kJobRecordVersion = 4;

/** File a job persists to: `<dir>/job_<id>.sipre`. */
std::string jobRecordPath(const std::string &dir, std::uint64_t id);

/**
 * Atomically persist `record` (temp file + rename). Running shards are
 * written as pending. Returns false on an unwritable directory.
 */
bool saveJobRecord(const std::string &dir, const JobRecord &record);

/**
 * Load one record. Strict: a stale version, truncated payload, garbled
 * result line, or a shard key that no longer matches the spec's
 * expansion all reject the whole file (return false) rather than
 * resurrecting a half-trusted job. Shards saved while running reload
 * as pending.
 */
bool loadJobRecord(const std::string &path, JobRecord &record);

/** The job-record files under `dir`, sorted (empty if no directory). */
std::vector<std::string> listJobRecordPaths(const std::string &dir);

} // namespace sipre::jobs

#endif // SIPRE_JOBS_JOB_STORE_HPP
