#include "jobs/http.hpp"

#include <sstream>

#include "core/json_io.hpp"
#include "core/options.hpp"
#include "core/trace_export.hpp"
#include "trace_obs/chrome_trace.hpp"
#include "trace_obs/recorder.hpp"

namespace sipre::jobs
{

namespace
{

using service::http::Request;
using service::http::Response;

Response
jsonResponse(int status, std::string body)
{
    Response response;
    response.status = status;
    response.headers.emplace_back("Content-Type", "application/json");
    response.body = std::move(body);
    return response;
}

Response
errorResponse(int status, const std::string &message)
{
    return jsonResponse(status, "{\"status\":\"error\",\"error\":\"" +
                                    jsonEscape(message) + "\"}");
}

Response
methodNotAllowed(const std::string &allow)
{
    Response response =
        errorResponse(405, "method not allowed (Allow: " + allow + ")");
    response.headers.emplace_back("Allow", allow);
    return response;
}

} // namespace

std::string
jobProgressToJson(const JobProgress &p)
{
    std::ostringstream os;
    os << "{\"id\":" << p.id << ",\"state\":\"" << jobStateName(p.state)
       << "\",\"shards_total\":" << p.shards_total
       << ",\"shards_done\":" << p.shards_done
       << ",\"shards_failed\":" << p.shards_failed
       << ",\"shards_cached\":" << p.shards_cached
       << ",\"eta_s\":" << jsonDouble(p.eta_s) << "}";
    return os.str();
}

std::optional<Response>
JobHttpHandler::handle(const Request &request)
{
    const std::string &target = request.target;
    if (target != "/jobs" && target.rfind("/jobs/", 0) != 0)
        return std::nullopt;

    if (target == "/jobs") {
        if (request.method == "POST") {
            SweepSpec spec;
            std::string error;
            if (!parseSweepSpec(request.body, spec, error))
                return errorResponse(400, error);
            const JobSubmitOutcome outcome = manager_.submit(spec);
            switch (outcome.status) {
            case JobSubmitStatus::kRejected: {
                Response response = jsonResponse(
                    429, "{\"status\":\"rejected\",\"error\":\"" +
                             jsonEscape(outcome.error) + "\"}");
                response.headers.emplace_back("Retry-After", "1");
                return response;
            }
            case JobSubmitStatus::kShutdown:
                return jsonResponse(
                    503, "{\"status\":\"draining\",\"error\":\"" +
                             jsonEscape(outcome.error) + "\"}");
            case JobSubmitStatus::kOk:
                break;
            }
            return jsonResponse(
                202, "{\"status\":\"ok\",\"id\":" +
                         std::to_string(outcome.id) + ",\"shards\":" +
                         std::to_string(outcome.shards) +
                         ",\"spec\":" + sweepSpecToJson(spec) + "}");
        }
        if (request.method == "GET") {
            std::string body = "{\"status\":\"ok\",\"jobs\":[";
            bool first = true;
            for (const JobProgress &p : manager_.list()) {
                if (!first)
                    body += ',';
                first = false;
                body += jobProgressToJson(p);
            }
            body += "]}";
            return jsonResponse(200, body);
        }
        return methodNotAllowed("GET, POST");
    }

    // /jobs/<id>, /jobs/<id>/result, or /jobs/<id>/trace
    std::string rest = target.substr(6);
    bool want_result = false;
    bool want_trace = false;
    const std::size_t slash = rest.find('/');
    if (slash != std::string::npos) {
        const std::string suffix = rest.substr(slash);
        if (suffix == "/result")
            want_result = true;
        else if (suffix == "/trace")
            want_trace = true;
        else
            return errorResponse(404, "no route for " + target);
        rest = rest.substr(0, slash);
    }
    const auto id = parseUnsigned(rest);
    if (!id)
        return errorResponse(404, "bad job id '" + rest + "'");

    if (want_trace) {
        if (request.method != "GET")
            return methodNotAllowed("GET");
        std::vector<ShardTraceInfo> shards;
        if (!manager_.traceInfo(*id, shards))
            return errorResponse(404, "no such job " + rest);
        // Chrome trace JSON: this job's spans from the shared recorder
        // (empty unless the daemon runs with tracing armed) plus one
        // scenario counter track per shard that recorded a timeline
        // (empty unless --scenario-window is set). A running job gets
        // a partial — still loadable — trace.
        std::vector<trace_obs::CounterSeries> series;
        series.reserve(shards.size());
        for (const ShardTraceInfo &shard : shards) {
            series.push_back(scenarioCounterSeries(
                shard.timeline,
                "ftq scenarios: shard" + std::to_string(shard.index) +
                    " " + shard.workload + "/" + shard.config_label));
        }
        return jsonResponse(
            200, trace_obs::buildChromeTrace(
                     trace_obs::Recorder::global(), *id, series,
                     "sipre_served job " + rest));
    }

    if (want_result) {
        if (request.method != "GET")
            return methodNotAllowed("GET");
        std::string results_json;
        const JobResultStatus status = manager_.result(*id, results_json);
        const auto p = manager_.progress(*id);
        switch (status) {
        case JobResultStatus::kUnknown:
            return errorResponse(404, "no such job " + rest);
        case JobResultStatus::kNotFinished:
            return jsonResponse(
                409,
                "{\"status\":\"pending\",\"error\":\"job not finished\","
                "\"progress\":" +
                    jobProgressToJson(*p) + "}");
        case JobResultStatus::kOk:
            break;
        }
        return jsonResponse(200, "{\"status\":\"ok\",\"id\":" + rest +
                                     ",\"state\":\"" +
                                     jobStateName(p->state) +
                                     "\",\"shards\":" + results_json +
                                     "}");
    }

    if (request.method == "GET") {
        const auto p = manager_.progress(*id);
        if (!p)
            return errorResponse(404, "no such job " + rest);
        return jsonResponse(200, "{\"status\":\"ok\",\"job\":" +
                                     jobProgressToJson(*p) + "}");
    }
    if (request.method == "DELETE") {
        std::string error;
        if (!manager_.cancel(*id, error)) {
            const int status =
                error == "no such job" ? 404 : 409;
            return errorResponse(status, error + " (job " + rest + ")");
        }
        const auto p = manager_.progress(*id);
        return jsonResponse(200, "{\"status\":\"ok\",\"job\":" +
                                     jobProgressToJson(*p) + "}");
    }
    return methodNotAllowed("GET, DELETE");
}

std::string
JobHttpHandler::metricsText() const
{
    const JobManagerStats stats = manager_.stats();
    std::ostringstream body;
    body << "# TYPE sipre_jobs_submitted_total counter\n"
         << "sipre_jobs_submitted_total " << stats.submitted << "\n"
         << "# TYPE sipre_jobs_completed_total counter\n"
         << "sipre_jobs_completed_total " << stats.completed << "\n"
         << "# TYPE sipre_jobs_failed_total counter\n"
         << "sipre_jobs_failed_total " << stats.failed << "\n"
         << "# TYPE sipre_jobs_cancelled_total counter\n"
         << "sipre_jobs_cancelled_total " << stats.cancelled << "\n"
         << "# TYPE sipre_jobs_rejected_total counter\n"
         << "sipre_jobs_rejected_total " << stats.rejected << "\n"
         << "# TYPE sipre_jobs_resumed_total counter\n"
         << "sipre_jobs_resumed_total " << stats.resumed << "\n"
         << "# TYPE sipre_jobs_quarantined_total counter\n"
         << "sipre_jobs_quarantined_total " << stats.quarantined
         << "\n"
         << "# TYPE sipre_job_shards_done_total counter\n"
         << "sipre_job_shards_done_total " << stats.shards_done << "\n"
         << "# TYPE sipre_job_shards_failed_total counter\n"
         << "sipre_job_shards_failed_total " << stats.shards_failed
         << "\n"
         << "# TYPE sipre_job_shards_cached_total counter\n"
         << "sipre_job_shards_cached_total " << stats.shards_cached
         << "\n";
    // Only a cluster-mode daemon can proxy shards; keep the
    // single-node /metrics surface byte-identical by omitting the
    // counter until it first ticks.
    if (stats.shards_proxied > 0)
        body << "# TYPE sipre_job_shards_proxied_total counter\n"
             << "sipre_job_shards_proxied_total "
             << stats.shards_proxied << "\n";
    body << "# TYPE sipre_jobs_active gauge\n"
         << "sipre_jobs_active " << stats.jobs_active << "\n"
         << "# TYPE sipre_jobs_known gauge\n"
         << "sipre_jobs_known " << stats.jobs_total << "\n"
         << "# TYPE sipre_job_shard_latency_us summary\n"
         << "sipre_job_shard_latency_us_count "
         << stats.shard_latency_count << "\n"
         << "sipre_job_shard_latency_us_sum "
         << jsonDouble(stats.shard_latency_sum_us) << "\n"
         << "sipre_job_shard_latency_us{quantile=\"0.5\"} "
         << stats.shard_latency_p50_us << "\n"
         << "sipre_job_shard_latency_us{quantile=\"0.9\"} "
         << stats.shard_latency_p90_us << "\n"
         << "sipre_job_shard_latency_us{quantile=\"0.99\"} "
         << stats.shard_latency_p99_us << "\n";
    return body.str();
}

} // namespace sipre::jobs
