/**
 * @file
 * The asynchronous campaign-job layer between the HTTP surface and the
 * SimulationEngine: accepts sweep specs, expands them into
 * per-(workload, config) shards, and executes the shards through the
 * engine's result tiers (LRU → campaign disk cache → coalescing →
 * workers) on a small pool of shard-executor threads. Every shard
 * completion checkpoints the job's on-disk record, so a restarted
 * daemon reloads the store and resumes jobs without re-simulating
 * finished shards. Jobs support listing, progress with an ETA,
 * cancellation, aggregated result fetch, and a bounded number of
 * concurrently active jobs with backpressure.
 */
#ifndef SIPRE_JOBS_MANAGER_HPP
#define SIPRE_JOBS_MANAGER_HPP

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "jobs/job_store.hpp"
#include "jobs/sweep.hpp"
#include "service/engine.hpp"
#include "util/statistics.hpp"

namespace sipre::jobs
{

/** Sizing and persistence knobs. */
struct JobManagerOptions
{
    /**
     * Directory for persistent job records. Created if missing; empty
     * disables persistence (jobs live only as long as the process).
     */
    std::string store_dir;

    /** Bound on non-terminal jobs; submits past it are rejected. */
    std::size_t max_active_jobs = 4;

    /**
     * Threads feeding shards into the engine. Each occupies one engine
     * queue slot or worker while its shard runs. 0 is allowed and
     * means "never execute" — useful for store inspection and tests.
     */
    unsigned shard_workers = 2;
};

/** How a submit() call was resolved. */
enum class JobSubmitStatus : std::uint8_t {
    kOk,       ///< job accepted (and persisted when a store is set)
    kRejected, ///< max_active_jobs reached — backpressure, retry later
    kShutdown  ///< manager is stopping; no new jobs accepted
};

struct JobSubmitOutcome
{
    JobSubmitStatus status = JobSubmitStatus::kShutdown;
    std::uint64_t id = 0;     ///< valid when kOk
    std::size_t shards = 0;   ///< valid when kOk
    std::string error;        ///< set when not kOk
};

/** Point-in-time view of one job (for GET /jobs and GET /jobs/<id>). */
struct JobProgress
{
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    std::size_t shards_total = 0;
    std::size_t shards_done = 0;   ///< includes failed shards
    std::size_t shards_failed = 0;
    std::size_t shards_cached = 0; ///< served by an engine cache tier
    /**
     * Seconds until completion, estimated from the mean observed shard
     * latency and the executor width. 0 when done or no sample yet.
     */
    double eta_s = 0.0;
};

/** How a result() call was resolved. */
enum class JobResultStatus : std::uint8_t {
    kOk,         ///< json set
    kUnknown,    ///< no such job
    kNotFinished ///< job not in a terminal state yet
};

/** Per-shard data the trace endpoint renders as counter tracks. */
struct ShardTraceInfo
{
    std::size_t index = 0;
    std::string workload;
    std::string config_label;
    ScenarioTimeline timeline;
};

/** Counters and gauges for /metrics. */
struct JobManagerStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t rejected = 0;       ///< backpressure rejections
    std::uint64_t resumed = 0;        ///< jobs reloaded unfinished
    std::uint64_t quarantined = 0;    ///< corrupt records set aside
    std::uint64_t shards_done = 0;    ///< successful shard completions
    std::uint64_t shards_failed = 0;
    std::uint64_t shards_cached = 0;  ///< of shards_done, cache-served
    std::uint64_t shards_proxied = 0; ///< of shards_done, peer-executed
    std::size_t jobs_active = 0;      ///< non-terminal jobs (gauge)
    std::size_t jobs_total = 0;       ///< jobs known (gauge)

    // Shard latency through the engine, microseconds (log2 buckets).
    std::uint64_t shard_latency_count = 0;
    double shard_latency_sum_us = 0.0;
    std::uint64_t shard_latency_p50_us = 0;
    std::uint64_t shard_latency_p90_us = 0;
    std::uint64_t shard_latency_p99_us = 0;
};

/** See file comment. Thread-safe. */
class JobManager
{
  public:
    /**
     * Binds to `engine` (not owned) and, when a store directory is
     * configured, reloads every readable record in it: terminal jobs
     * become fetchable history, unfinished jobs resume execution with
     * their completed shards intact. Unreadable (corrupt, truncated,
     * or forged) records are moved to `<store_dir>/quarantine/` — set
     * aside for inspection, never deleted, never blocking the rest of
     * the store from loading.
     */
    JobManager(service::SimulationEngine &engine,
               const JobManagerOptions &options);
    ~JobManager();

    JobManager(const JobManager &) = delete;
    JobManager &operator=(const JobManager &) = delete;

    /** Accept a validated sweep as a new job (non-blocking). */
    JobSubmitOutcome submit(const SweepSpec &spec);

    /** Progress for one job; nullopt when unknown. */
    std::optional<JobProgress> progress(std::uint64_t id) const;

    /** All known jobs, id-ascending. */
    std::vector<JobProgress> list() const;

    /**
     * Request cancellation. Pending shards are skipped; shards already
     * inside the engine finish and are recorded. Returns false (with
     * `error`) for unknown or already-terminal jobs.
     */
    bool cancel(std::uint64_t id, std::string &error);

    /**
     * Aggregated results of a terminal job as a JSON array: one
     * element per shard with its request, status, and (when done) the
     * bit-exact SimResult document.
     */
    JobResultStatus result(std::uint64_t id, std::string &json) const;

    /**
     * Scenario timelines of the job's completed shards (shards with no
     * recorded timeline are skipped), for GET /jobs/<id>/trace. Unlike
     * result() this works on a running job — a partial trace is still
     * a useful trace. Returns false for an unknown id.
     */
    bool traceInfo(std::uint64_t id,
                   std::vector<ShardTraceInfo> &out) const;

    JobManagerStats stats() const;

    /** Jobs that resumed from the store at construction. */
    std::uint64_t resumedJobs() const;

    /** Corrupt records moved to quarantine at construction. */
    std::uint64_t quarantinedRecords() const;

    /**
     * Stop the executors. Shards already submitted to the engine are
     * awaited and checkpointed; everything else stays pending in the
     * store for the next incarnation. Idempotent.
     */
    void shutdown();

  private:
    struct JobEntry
    {
        JobRecord record;
        bool cancel_requested = false;
        std::size_t shards_running = 0;
    };

    void executorLoop();
    /** Pick the next runnable (job, shard) pair, id/index order. */
    bool pickShardLocked(std::shared_ptr<JobEntry> &job,
                         std::size_t &shard_index);
    void finishJobIfDoneLocked(JobEntry &job);
    void checkpointLocked(const JobEntry &job);

    service::SimulationEngine &engine_;
    JobManagerOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::map<std::uint64_t, std::shared_ptr<JobEntry>> jobs_;
    std::uint64_t next_id_ = 1;
    bool stopping_ = false;

    // Counters (guarded by mutex_).
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t resumed_ = 0;
    std::uint64_t quarantined_ = 0;
    std::uint64_t shards_done_ = 0;
    std::uint64_t shards_failed_ = 0;
    std::uint64_t shards_cached_ = 0;
    std::uint64_t shards_proxied_ = 0;
    Log2Histogram shard_latency_hist_;
    RunningStat shard_latency_stat_;

    std::vector<std::thread> executors_;
    std::mutex shutdown_mutex_;
    bool joined_ = false;
};

} // namespace sipre::jobs

#endif // SIPRE_JOBS_MANAGER_HPP
