#include "jobs/manager.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "core/json_io.hpp"
#include "trace_obs/recorder.hpp"
#include "util/fault.hpp"

namespace sipre::jobs
{

namespace
{

/**
 * Move a record the loader rejected into `<store_dir>/quarantine/`,
 * out of the store's glob but preserved byte-for-byte for inspection.
 * Falls back to leaving the file in place when the move itself fails
 * (e.g. read-only filesystem); returns whether the move happened.
 */
bool
quarantineRecord(const std::string &store_dir, const std::string &path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::path qdir = fs::path(store_dir) / "quarantine";
    fs::create_directories(qdir, ec);
    if (ec)
        return false;
    fs::path target = qdir / fs::path(path).filename();
    // Never clobber an earlier quarantined record of the same name.
    for (int i = 1; fs::exists(target, ec) && i < 1000; ++i)
        target = qdir / (fs::path(path).filename().string() + "." +
                         std::to_string(i));
    fs::rename(path, target, ec);
    return !ec;
}

} // namespace

JobManager::JobManager(service::SimulationEngine &engine,
                       const JobManagerOptions &options)
    : engine_(engine), options_(options)
{
    if (!options_.store_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.store_dir, ec);

        for (const std::string &path :
             listJobRecordPaths(options_.store_dir)) {
            JobRecord record;
            if (!loadJobRecord(path, record)) {
                const bool moved =
                    quarantineRecord(options_.store_dir, path);
                ++quarantined_;
                std::fprintf(stderr,
                             "[sipre_jobs] %s corrupt job record %s\n",
                             moved ? "quarantined" : "skipping",
                             path.c_str());
                continue;
            }
            auto entry = std::make_shared<JobEntry>();
            entry->record = std::move(record);
            if (!jobStateIsTerminal(entry->record.state)) {
                entry->record.state = JobState::kQueued;
                ++resumed_;
            }
            next_id_ = std::max(next_id_, entry->record.id + 1);
            jobs_.emplace(entry->record.id, std::move(entry));
        }
    }

    executors_.reserve(options_.shard_workers);
    for (unsigned i = 0; i < options_.shard_workers; ++i)
        executors_.emplace_back([this] { executorLoop(); });
}

JobManager::~JobManager()
{
    shutdown();
}

void
JobManager::checkpointLocked(const JobEntry &job)
{
    if (options_.store_dir.empty())
        return;
    if (!saveJobRecord(options_.store_dir, job.record))
        std::fprintf(stderr,
                     "[sipre_jobs] warning: cannot checkpoint job %llu "
                     "in %s\n",
                     static_cast<unsigned long long>(job.record.id),
                     options_.store_dir.c_str());
}

JobSubmitOutcome
JobManager::submit(const SweepSpec &spec)
{
    std::vector<service::SimRequest> requests = expandSweep(spec);

    std::lock_guard<std::mutex> lock(mutex_);
    JobSubmitOutcome outcome;
    if (stopping_) {
        outcome.status = JobSubmitStatus::kShutdown;
        outcome.error = "job manager shutting down";
        return outcome;
    }
    std::size_t active = 0;
    for (const auto &[id, entry] : jobs_) {
        if (!jobStateIsTerminal(entry->record.state))
            ++active;
    }
    if (active >= options_.max_active_jobs) {
        ++rejected_;
        outcome.status = JobSubmitStatus::kRejected;
        outcome.error = "too many active jobs (" + std::to_string(active) +
                        "/" + std::to_string(options_.max_active_jobs) +
                        ")";
        return outcome;
    }

    auto entry = std::make_shared<JobEntry>();
    entry->record.id = next_id_++;
    entry->record.state = JobState::kQueued;
    entry->record.spec = spec;
    entry->record.shards.reserve(requests.size());
    for (auto &request : requests) {
        ShardRecord shard;
        shard.key = request.canonicalKey();
        shard.request = std::move(request);
        entry->record.shards.push_back(std::move(shard));
    }
    ++submitted_;
    checkpointLocked(*entry);
    outcome.status = JobSubmitStatus::kOk;
    outcome.id = entry->record.id;
    outcome.shards = entry->record.shards.size();
    jobs_.emplace(entry->record.id, std::move(entry));
    work_cv_.notify_all();
    return outcome;
}

bool
JobManager::pickShardLocked(std::shared_ptr<JobEntry> &job,
                            std::size_t &shard_index)
{
    for (auto &[id, entry] : jobs_) {
        if (jobStateIsTerminal(entry->record.state) ||
            entry->cancel_requested)
            continue;
        for (std::size_t i = 0; i < entry->record.shards.size(); ++i) {
            if (entry->record.shards[i].state == ShardState::kPending) {
                entry->record.shards[i].state = ShardState::kRunning;
                entry->record.state = JobState::kRunning;
                ++entry->shards_running;
                job = entry;
                shard_index = i;
                return true;
            }
        }
    }
    return false;
}

void
JobManager::finishJobIfDoneLocked(JobEntry &job)
{
    if (jobStateIsTerminal(job.record.state) || job.shards_running > 0)
        return;
    if (job.cancel_requested) {
        job.record.state = JobState::kCancelled;
        ++cancelled_;
        return;
    }
    for (const auto &shard : job.record.shards) {
        if (shard.state == ShardState::kPending ||
            shard.state == ShardState::kRunning)
            return; // more work to do
    }
    if (job.record.failedShards() > 0) {
        job.record.state = JobState::kFailed;
        ++failed_;
    } else {
        job.record.state = JobState::kCompleted;
        ++completed_;
    }
}

void
JobManager::executorLoop()
{
    for (;;) {
        std::shared_ptr<JobEntry> job;
        std::size_t index = 0;
        service::SimRequest request;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                return stopping_ || pickShardLocked(job, index);
            });
            if (job == nullptr)
                return; // stopping, nothing picked
            request = job->record.shards[index].request;
        }
        service::SubmitOutcome outcome;
        bool abandoned = false;
        // Fault site: shard execution. A failure here exercises the
        // failed-shard bookkeeping (and checkpointing) without needing
        // a genuinely broken workload.
        bool injected_fail = false;
        if (const auto fault = fault::at(fault::Site::kShard)) {
            fault::applyDelay(fault);
            injected_fail = fault.fail;
        }
        if (injected_fail) {
            outcome.status = service::SubmitStatus::kFailed;
            outcome.error = "injected shard fault";
        } else {
            // Everything below — including the engine.submit span and
            // the worker-side sim span it hands off to — is attributed
            // to this job id for GET /jobs/<id>/trace.
            const trace_obs::ScopedJob job_scope(job->record.id);
            trace_obs::Span span("jobs.shard", "jobs");
            span.arg("workload", request.workload);
            span.arg("shard", std::to_string(index));
            for (;;) {
                outcome = engine_.submit(request);
                if (outcome.status ==
                    service::SubmitStatus::kRejected) {
                    // Engine backpressure: the queue is full of other
                    // work. Back off briefly and retry unless
                    // stopping.
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        if (stopping_) {
                            abandoned = true;
                            break;
                        }
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                    continue;
                }
                if (outcome.status == service::SubmitStatus::kShutdown)
                    abandoned = true;
                break;
            }
        }

        std::lock_guard<std::mutex> lock(mutex_);
        ShardRecord &shard = job->record.shards[index];
        --job->shards_running;
        if (abandoned) {
            // Not executed: back to pending so a later incarnation
            // (or the next executor pass) picks it up.
            shard.state = ShardState::kPending;
        } else if (outcome.status == service::SubmitStatus::kOk) {
            shard.state = ShardState::kDone;
            shard.result = *outcome.result;
            shard.cached = outcome.cache_hit || outcome.disk_hit ||
                           outcome.coalesced;
            shard.latency_us = outcome.latency_us;
            ++shards_done_;
            if (shard.cached)
                ++shards_cached_;
            if (outcome.proxied)
                ++shards_proxied_;
            shard_latency_stat_.add(outcome.latency_us);
            shard_latency_hist_.add(
                static_cast<std::uint64_t>(outcome.latency_us));
        } else {
            shard.state = ShardState::kFailed;
            shard.error = outcome.error.empty() ? "simulation failed"
                                                : outcome.error;
            ++shards_failed_;
        }
        finishJobIfDoneLocked(*job);
        checkpointLocked(*job);
        if (outcome.status == service::SubmitStatus::kShutdown) {
            // The engine is gone; no shard can ever run again.
            stopping_ = true;
            work_cv_.notify_all();
            return;
        }
        if (abandoned)
            return;
    }
}

std::optional<JobProgress>
JobManager::progress(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    const JobRecord &record = it->second->record;
    JobProgress p;
    p.id = record.id;
    p.state = record.state;
    p.shards_total = record.shards.size();
    p.shards_failed = record.failedShards();
    p.shards_done = record.doneShards() + p.shards_failed;
    p.shards_cached = record.cachedShards();
    if (!jobStateIsTerminal(record.state) &&
        p.shards_done < p.shards_total &&
        shard_latency_hist_.total() > 0) {
        const double mean_us = shard_latency_hist_.mean();
        const double remaining =
            static_cast<double>(p.shards_total - p.shards_done);
        const double width = options_.shard_workers > 0
                                 ? static_cast<double>(
                                       options_.shard_workers)
                                 : 1.0;
        p.eta_s = mean_us * remaining / width / 1e6;
    }
    return p;
}

std::vector<JobProgress>
JobManager::list() const
{
    std::vector<std::uint64_t> ids;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, entry] : jobs_)
            ids.push_back(id);
    }
    std::vector<JobProgress> out;
    out.reserve(ids.size());
    for (const std::uint64_t id : ids) {
        if (auto p = progress(id))
            out.push_back(*p);
    }
    return out;
}

bool
JobManager::cancel(std::uint64_t id, std::string &error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        error = "no such job";
        return false;
    }
    JobEntry &job = *it->second;
    if (jobStateIsTerminal(job.record.state)) {
        error = std::string("job already ") +
                jobStateName(job.record.state);
        return false;
    }
    job.cancel_requested = true;
    finishJobIfDoneLocked(job); // immediate when nothing is running
    checkpointLocked(job);
    return true;
}

JobResultStatus
JobManager::result(std::uint64_t id, std::string &json) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return JobResultStatus::kUnknown;
    const JobRecord &record = it->second->record;
    if (!jobStateIsTerminal(record.state))
        return JobResultStatus::kNotFinished;

    json = "[";
    for (std::size_t i = 0; i < record.shards.size(); ++i) {
        const ShardRecord &shard = record.shards[i];
        if (i != 0)
            json += ',';
        json += "{\"index\":" + std::to_string(i) + ",\"request\":" +
                service::requestToJson(shard.request);
        switch (shard.state) {
        case ShardState::kDone:
            json += ",\"state\":\"done\",\"cached\":";
            json += shard.cached ? "true" : "false";
            json += ",\"latency_us\":" + jsonDouble(shard.latency_us);
            json += ",\"result\":" + simResultToJson(shard.result);
            break;
        case ShardState::kFailed:
            json += ",\"state\":\"failed\",\"error\":\"" +
                    jsonEscape(shard.error) + "\"";
            break;
        case ShardState::kPending:
        case ShardState::kRunning:
            json += ",\"state\":\"skipped\""; // cancelled before running
            break;
        }
        json += '}';
    }
    json += ']';
    return JobResultStatus::kOk;
}

bool
JobManager::traceInfo(std::uint64_t id,
                      std::vector<ShardTraceInfo> &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    const JobRecord &record = it->second->record;
    for (std::size_t i = 0; i < record.shards.size(); ++i) {
        const ShardRecord &shard = record.shards[i];
        if (shard.state != ShardState::kDone ||
            !shard.result.scenario_timeline.enabled())
            continue;
        ShardTraceInfo info;
        info.index = i;
        info.workload = shard.result.workload;
        info.config_label = shard.result.config_label;
        info.timeline = shard.result.scenario_timeline;
        out.push_back(std::move(info));
    }
    return true;
}

JobManagerStats
JobManager::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JobManagerStats s;
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.rejected = rejected_;
    s.resumed = resumed_;
    s.quarantined = quarantined_;
    s.shards_done = shards_done_;
    s.shards_failed = shards_failed_;
    s.shards_cached = shards_cached_;
    s.shards_proxied = shards_proxied_;
    s.jobs_total = jobs_.size();
    for (const auto &[id, entry] : jobs_) {
        if (!jobStateIsTerminal(entry->record.state))
            ++s.jobs_active;
    }
    s.shard_latency_count = shard_latency_stat_.count();
    s.shard_latency_sum_us = shard_latency_stat_.sum();
    if (shard_latency_hist_.total() > 0) {
        s.shard_latency_p50_us =
            shard_latency_hist_.percentileUpperBound(0.50);
        s.shard_latency_p90_us =
            shard_latency_hist_.percentileUpperBound(0.90);
        s.shard_latency_p99_us =
            shard_latency_hist_.percentileUpperBound(0.99);
    }
    return s;
}

std::uint64_t
JobManager::resumedJobs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resumed_;
}

std::uint64_t
JobManager::quarantinedRecords() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_;
}

void
JobManager::shutdown()
{
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        work_cv_.notify_all();
    }
    if (!joined_) {
        for (auto &executor : executors_)
            executor.join();
        joined_ = true;
    }
    // Whatever didn't finish stays pending on disk for the next
    // incarnation to resume.
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[id, entry] : jobs_) {
        if (!jobStateIsTerminal(entry->record.state))
            checkpointLocked(*entry);
    }
}

} // namespace sipre::jobs
