/**
 * @file
 * The sweep specification behind an asynchronous campaign job: a set of
 * workloads crossed with a cartesian grid of front-end knobs. Parsed
 * from JSON with the same strict validation and knob vocabulary as a
 * single /simulate request, and expanded deterministically into
 * per-(workload, config) shards the JobManager executes through the
 * engine.
 */
#ifndef SIPRE_JOBS_SWEEP_HPP
#define SIPRE_JOBS_SWEEP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "service/request.hpp"

namespace sipre::jobs
{

/**
 * One validated sweep: every axis holds at least one value; defaults
 * match the single-request defaults, so `{"workloads":["x"]}` means
 * exactly one default-config shard.
 */
struct SweepSpec
{
    std::vector<std::string> workloads;
    /**
     * One fixed heterogeneous co-run mix (workload names, one per
     * core). Mutually exclusive with `workloads` and `cores`: the mix
     * IS the workload dimension and fixes the core count.
     */
    std::vector<std::string> mix;
    std::uint64_t instructions = 2'000'000;
    /** Homogeneous co-run sizes crossed with `workloads`. */
    std::vector<std::uint32_t> cores = {1};
    std::vector<std::uint32_t> ftq = {24};
    std::vector<SimMode> modes = {SimMode::kBase};
    std::vector<DirectionPredictorKind> predictors = {
        DirectionPredictorKind::kHashedPerceptron};
    std::vector<IPrefetcherKind> hw_prefetchers = {IPrefetcherKind::kNone};
    std::vector<bool> pfc = {true};
    std::vector<bool> ghr_filter = {true};
    std::vector<bool> wrong_path = {true};
    std::vector<DistanceProviderKind> distance_providers = {
        DistanceProviderKind::kStatic};

    /**
     * |workloads| × the product of all axis lengths (the workload
     * dimension is 1 when a fixed `mix` stands in for it).
     */
    std::size_t shardCount() const;
};

/** Hard cap on shards per job (bounds record size and queue pressure). */
inline constexpr std::size_t kMaxShardsPerJob = 4096;

/**
 * Parse and validate a JSON sweep spec. `workloads` is required and is
 * either an array of known workload names or the string "all" (the
 * full 48-workload suite) — or `mix` (a fixed per-core workload list)
 * stands in for it; every other axis accepts a scalar or an array of
 * distinct values: instructions (scalar only), cores, ftq, mode,
 * predictor, hw_prefetcher, pfc, ghr_filter, wrong_path,
 * distance_provider. Unknown
 * fields, bad types, duplicate axis values, out-of-range values, and
 * sweeps past kMaxShardsPerJob are rejected with a specific `error`.
 */
bool parseSweepSpec(const std::string &body, SweepSpec &out,
                    std::string &error);

/** Canonical JSON for a spec (stable field and element order). */
std::string sweepSpecToJson(const SweepSpec &spec);

/**
 * Expand the sweep into its shards: workloads outermost, then cores,
 * ftq, mode, predictor, hw_prefetcher, pfc, ghr_filter, wrong_path,
 * distance_provider innermost. The order is part of the job-record
 * contract — shard indices persist across restarts — so new axes
 * append innermost and the order must never change for a given spec.
 */
std::vector<service::SimRequest> expandSweep(const SweepSpec &spec);

} // namespace sipre::jobs

#endif // SIPRE_JOBS_SWEEP_HPP
