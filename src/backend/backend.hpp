/**
 * @file
 * A simplified out-of-order back-end: dispatch from the decode queue
 * into a ROB, dependency-tracked issue with per-class latencies, loads
 * and stores through the L1-D, in-order retire, and branch-resolution
 * notifications back to the front-end.
 *
 * The back-end's job in this study is to provide realistic consumption
 * pressure and resolution timing for the front-end characterization;
 * it is deliberately simpler than a full scheduler model.
 *
 * Hot-path layout: the issue scan is the single most expensive loop in
 * the whole simulator (it walks up to sched_window entries every busy
 * cycle), so the per-entry scheduling state lives in flat
 * structure-of-arrays mirrors indexed by `seq & slot_mask_` — a
 * power-of-two slot space at least as large as the ROB, so live
 * sequence numbers never collide. Instead of re-deriving operand
 * readiness from producer ROB entries on every scan (two pointer chases
 * per waiting entry), each entry carries an outstanding-producer count
 * that is decremented by the producer's completion through a pooled
 * intrusive waiter list; the scan then touches exactly two small arrays.
 */
#ifndef SIPRE_BACKEND_BACKEND_HPP
#define SIPRE_BACKEND_BACKEND_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "frontend/decode_queue.hpp"
#include "memory/hierarchy.hpp"
#include "trace/trace.hpp"
#include "util/circular_buffer.hpp"
#include "util/flat_map.hpp"

namespace sipre
{

/** Back-end configuration (defaults are Sunny-Cove-like, per Table I). */
struct BackendConfig
{
    std::uint32_t rob_size = 352;
    std::uint32_t dispatch_width = 6;
    std::uint32_t issue_width = 6;
    std::uint32_t retire_width = 6;
    std::uint32_t load_ports = 2;
    std::uint32_t store_ports = 1;
    std::uint32_t sched_window = 128; ///< issue-scan depth from ROB head

    Cycle alu_latency = 1;
    Cycle fp_latency = 4;
    Cycle mul_latency = 3;
    Cycle div_latency = 18;
    Cycle branch_latency = 1;
};

/** Back-end statistics. */
struct BackendStats
{
    std::uint64_t retired = 0;
    std::uint64_t retired_sw_prefetches = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t loads_issued = 0;
    std::uint64_t stores_issued = 0;
    std::uint64_t rob_full_cycles = 0;
    std::uint64_t empty_rob_cycles = 0; ///< starved by the front-end
};

/**
 * The out-of-order core back-end. See file comment.
 */
class Backend
{
  public:
    Backend(const BackendConfig &config, const Trace &trace,
            MemoryHierarchy &memory, DecodeQueue &decode_queue);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Earliest future cycle at which the back-end can make progress
     * (retire, complete, issue, or dispatch); kNoCycle when nothing is
     * pending locally. A tick at any earlier cycle must be a no-op
     * apart from the per-cycle occupancy counters, which the simulator
     * accounts for in bulk via accountSkippedCycles().
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account the per-cycle occupancy counters for `count` skipped
     * cycles during which the back-end provably did nothing.
     */
    void
    accountSkippedCycles(Cycle count)
    {
        if (rob_.empty())
            stats_.empty_rob_cycles += count;
        if (rob_.full())
            stats_.rob_full_cycles += count;
    }

    /** Instructions retired since construction (never reset). */
    std::uint64_t retired() const { return retired_total_; }

    const BackendStats &stats() const { return stats_; }

    /** Zero the event counters (end-of-warmup). State is kept. */
    void resetStats() { stats_ = BackendStats{}; }

    /** ROB occupancy (for tests). */
    std::size_t robOccupancy() const { return rob_.size(); }

    /** Called when a branch enters the ROB (decode complete). */
    std::function<void(std::uint64_t trace_index, Cycle now)> onBranchDecoded;

    /** Called when a branch finishes execution (resolution). */
    std::function<void(std::uint64_t trace_index, Cycle now)>
        onBranchExecuted;

  private:
    enum class State : std::uint8_t {
        kWaiting,   ///< in ROB, operands possibly outstanding
        kExecuting, ///< latency counting down
        kWaitingMem,///< load in flight in the hierarchy
        kDone
    };

    struct RobEntry
    {
        std::uint64_t trace_index = 0;
        std::uint64_t seq = 0;         ///< global dispatch sequence number
    };

    struct ExecEvent
    {
        Cycle ready;
        std::uint64_t seq;

        bool
        operator>(const ExecEvent &other) const
        {
            return ready != other.ready ? ready > other.ready
                                        : seq > other.seq;
        }
    };

    static constexpr std::uint64_t kNoProducer = ~std::uint64_t{0};
    static constexpr std::uint32_t kNilWaiter = ~std::uint32_t{0};

    Cycle latencyFor(InstClass cls) const;
    std::uint32_t slotOf(std::uint64_t seq) const
    {
        return static_cast<std::uint32_t>(seq) & slot_mask_;
    }
    /** Is seq still in the ROB? Sequence numbers are contiguous. */
    bool
    inRob(std::uint64_t seq) const
    {
        return !rob_.empty() && seq >= rob_.front().seq &&
               seq - rob_.front().seq < rob_.size();
    }
    void markDone(std::uint64_t seq, Cycle now);
    void dispatch(Cycle now);
    void issue(Cycle now);
    void complete(Cycle now);
    void retire(Cycle now);

    BackendConfig config_;
    const Trace &trace_;
    MemoryHierarchy &memory_;
    DecodeQueue &decode_queue_;

    CircularBuffer<RobEntry> rob_;

    // --- SoA mirrors of per-entry scheduling state, indexed by
    // seq & slot_mask_ (see file comment). slot_deps_ counts producers
    // that were in the ROB and not yet Done when the consumer
    // dispatched; it reaches zero exactly when the original
    // sourcesReady() scan would first report true.
    std::uint32_t slot_mask_ = 0;
    std::vector<std::uint8_t> slot_state_;
    std::vector<std::uint8_t> slot_deps_;
    std::vector<std::uint64_t> slot_trace_index_;
    /**
     * Pooled intrusive waiter lists: node id `slot * 2 + src_operand`
     * lives in waiter_next_; waiter_head_[p] chains the consumers of
     * producer slot p. No allocation after construction — a consumer
     * occupies at most its own two nodes.
     */
    std::vector<std::uint32_t> waiter_head_;
    std::vector<std::uint32_t> waiter_next_;

    /** kWaiting entries with zero outstanding producers, whole ROB. */
    std::size_t ready_count_ = 0;

    /**
     * True when some kWaiting entry inside the scheduler window may
     * have ready sources — maintained as a byproduct of issue() (port
     * or L1-D backpressure leftovers) and dispatch() (newly dispatched
     * entries with no outstanding producers), so nextEventCycle() can
     * answer in O(1) instead of rescanning the window. Conservative
     * true is always safe; it only costs a no-op tick.
     */
    bool ready_waiting_ = true;
    std::uint64_t next_seq_ = 0;
    std::uint64_t retired_total_ = 0;
    std::priority_queue<ExecEvent, std::vector<ExecEvent>,
                        std::greater<ExecEvent>>
        exec_done_;

    /** Architectural register -> sequence number of the last producer. */
    std::array<std::uint64_t, 256> producers_;

    /** Outstanding load request id -> producing sequence number. */
    FlatMap<std::uint64_t> inflight_loads_;

    BackendStats stats_;
};

} // namespace sipre

#endif // SIPRE_BACKEND_BACKEND_HPP
