#include "backend/backend.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace sipre
{

Backend::Backend(const BackendConfig &config, const Trace &trace,
                 MemoryHierarchy &memory, DecodeQueue &decode_queue)
    : config_(config), trace_(trace), memory_(memory),
      decode_queue_(decode_queue), rob_(config.rob_size)
{
    producers_.fill(kNoProducer);

    std::uint32_t slots = 1;
    while (slots < config.rob_size)
        slots <<= 1;
    slot_mask_ = slots - 1;
    slot_state_.assign(slots, static_cast<std::uint8_t>(State::kDone));
    slot_deps_.assign(slots, 0);
    slot_trace_index_.assign(slots, 0);
    waiter_head_.assign(slots, kNilWaiter);
    waiter_next_.assign(std::size_t{slots} * 2, kNilWaiter);
}

Cycle
Backend::latencyFor(InstClass cls) const
{
    switch (cls) {
      case InstClass::kFp:
        return config_.fp_latency;
      case InstClass::kMul:
        return config_.mul_latency;
      case InstClass::kDiv:
        return config_.div_latency;
      case InstClass::kCondBranch:
      case InstClass::kDirectJump:
      case InstClass::kIndirectJump:
      case InstClass::kCall:
      case InstClass::kIndirectCall:
      case InstClass::kReturn:
        return config_.branch_latency;
      default:
        return config_.alu_latency;
    }
}

void
Backend::markDone(std::uint64_t seq, Cycle now)
{
    SIPRE_ASSERT(inRob(seq), "completion for an instruction not in the ROB");
    const std::uint32_t slot = slotOf(seq);
    slot_state_[slot] = static_cast<std::uint8_t>(State::kDone);

    // Wake the consumers registered against this producer. A consumer
    // is always younger than its producer, so it is still in the ROB
    // (its nodes are valid) when the producer completes. An entry whose
    // outstanding-producer count reaches zero is necessarily still
    // kWaiting — it could never have issued with a dependence pending.
    std::uint32_t node = waiter_head_[slot];
    waiter_head_[slot] = kNilWaiter;
    while (node != kNilWaiter) {
        const std::uint32_t next = waiter_next_[node];
        waiter_next_[node] = kNilWaiter;
        if (--slot_deps_[node >> 1] == 0)
            ++ready_count_;
        node = next;
    }

    const std::uint64_t trace_index = slot_trace_index_[slot];
    if (trace_[trace_index].isBranch() && onBranchExecuted)
        onBranchExecuted(trace_index, now);
}

void
Backend::tick(Cycle now)
{
    complete(now);
    retire(now);
    issue(now);
    dispatch(now);

    if (rob_.empty())
        ++stats_.empty_rob_cycles;
    if (rob_.full())
        ++stats_.rob_full_cycles;
}

Cycle
Backend::nextEventCycle(Cycle now) const
{
    // Retirement: a completed head retires next cycle.
    if (!rob_.empty() &&
        slot_state_[slotOf(rob_.front().seq)] ==
            static_cast<std::uint8_t>(State::kDone))
        return now + 1;

    // Issue: a waiting instruction with possibly-ready sources inside
    // the scheduler window is (re)considered every cycle. The flag is
    // maintained by issue()/dispatch() so no window rescan is needed.
    if (ready_waiting_)
        return now + 1;

    // Fixed-latency completions.
    if (!exec_done_.empty() && exec_done_.top().ready <= now + 1)
        return now + 1;

    // Dispatch: blocked on the decode head's ready_at (or, when the ROB
    // is full, on a retirement event reported above / a memory fill
    // reported by the hierarchy).
    const bool can_dispatch = !decode_queue_.empty() && !rob_.full();
    if (can_dispatch && decode_queue_.front().ready_at <= now + 1)
        return now + 1;

    Cycle next = kNoCycle;
    if (!exec_done_.empty())
        next = std::max(now + 1, exec_done_.top().ready);
    if (can_dispatch) {
        next = std::min(next,
                        std::max(now + 1, decode_queue_.front().ready_at));
    }
    return next;
}

void
Backend::complete(Cycle now)
{
    // Loads returning from the hierarchy.
    auto &done = memory_.dataCompleted();
    for (const MemRequest &req : done) {
        const std::uint64_t *seq = inflight_loads_.find(req.id);
        if (seq == nullptr)
            continue;
        markDone(*seq, now);
        inflight_loads_.erase(req.id);
    }
    done.clear();

    // Fixed-latency operations finishing this cycle.
    while (!exec_done_.empty() && exec_done_.top().ready <= now) {
        const std::uint64_t seq = exec_done_.top().seq;
        exec_done_.pop();
        markDone(seq, now);
    }
}

void
Backend::retire(Cycle now)
{
    (void)now;
    std::uint32_t budget = config_.retire_width;
    while (budget > 0 && !rob_.empty() &&
           slot_state_[slotOf(rob_.front().seq)] ==
               static_cast<std::uint8_t>(State::kDone)) {
        const RobEntry entry = rob_.pop();
        if (trace_[entry.trace_index].isSwPrefetch())
            ++stats_.retired_sw_prefetches;
        ++stats_.retired;
        ++retired_total_;
        --budget;
    }
}

void
Backend::issue(Cycle now)
{
    // Nothing in the whole ROB is ready: the scan would find no issue
    // candidate and no port leftovers, so skip it outright.
    if (ready_count_ == 0) {
        ready_waiting_ = config_.issue_width == 0;
        return;
    }

    std::uint32_t budget = config_.issue_width;
    std::uint32_t load_ports = config_.load_ports;
    std::uint32_t store_ports = config_.store_ports;
    bool leftover = false;

    // Scan a bounded scheduler window from the oldest instruction. The
    // scan touches only the SoA state/deps bytes; full entries are
    // consulted only for instructions that actually issue.
    const std::uint64_t front_seq = rob_.front().seq;
    const std::size_t window =
        std::min<std::size_t>(rob_.size(), config_.sched_window);
    for (std::size_t pos = 0; pos < window && budget > 0; ++pos) {
        const std::uint64_t seq = front_seq + pos;
        const std::uint32_t slot = slotOf(seq);
        if (slot_state_[slot] != static_cast<std::uint8_t>(State::kWaiting)
            || slot_deps_[slot] != 0)
            continue;

        const TraceInstruction &inst = trace_[slot_trace_index_[slot]];
        if (inst.isLoad()) {
            if (load_ports == 0 || !memory_.dataCanAccept()) {
                leftover = true; // ready but port/queue-blocked
                continue;
            }
            const ReqId id =
                memory_.issueLoad(inst.mem_addr, now, inst.pc);
            inflight_loads_.insert(id, seq);
            slot_state_[slot] =
                static_cast<std::uint8_t>(State::kWaitingMem);
            --load_ports;
            ++stats_.loads_issued;
        } else if (inst.isStore()) {
            if (store_ports == 0 || !memory_.dataCanAccept()) {
                leftover = true; // ready but port/queue-blocked
                continue;
            }
            memory_.issueStore(inst.mem_addr, now);
            slot_state_[slot] = static_cast<std::uint8_t>(State::kExecuting);
            exec_done_.push(ExecEvent{now + config_.alu_latency, seq});
            --store_ports;
            ++stats_.stores_issued;
        } else {
            slot_state_[slot] = static_cast<std::uint8_t>(State::kExecuting);
            exec_done_.push(ExecEvent{now + latencyFor(inst.cls), seq});
        }
        --ready_count_;
        --budget;
    }
    // Budget exhaustion may leave further ready entries unscanned;
    // conservatively keep the backend ticking in that case.
    ready_waiting_ = leftover || budget == 0;
}

void
Backend::dispatch(Cycle now)
{
    std::uint32_t budget = config_.dispatch_width;
    while (budget > 0 && !rob_.full() && !decode_queue_.empty() &&
           decode_queue_.front().ready_at <= now) {
        const DecodedUop uop = decode_queue_.pop();
        const TraceInstruction &inst = trace_[uop.trace_index];

        const std::uint64_t seq = next_seq_++;
        const std::uint32_t slot = slotOf(seq);
        slot_state_[slot] = static_cast<std::uint8_t>(State::kWaiting);
        slot_trace_index_[slot] = uop.trace_index;
        waiter_head_[slot] = kNilWaiter;

        // Register a dependence per source operand whose producer is
        // still in the ROB and not yet Done; anything else (no
        // producer, retired producer, completed producer) is ready now,
        // matching the original sourcesReady() walk.
        std::uint8_t deps = 0;
        for (std::size_t s = 0; s < inst.src.size(); ++s) {
            if (inst.src[s] == kNoReg)
                continue;
            const std::uint64_t producer = producers_[inst.src[s]];
            if (producer == kNoProducer || !inRob(producer))
                continue;
            const std::uint32_t pslot = slotOf(producer);
            if (slot_state_[pslot] == static_cast<std::uint8_t>(State::kDone))
                continue;
            ++deps;
            const std::uint32_t node =
                slot * 2 + static_cast<std::uint32_t>(s);
            waiter_next_[node] = waiter_head_[pslot];
            waiter_head_[pslot] = node;
        }
        slot_deps_[slot] = deps;
        if (deps == 0)
            ++ready_count_;
        if (inst.dst != kNoReg)
            producers_[inst.dst] = seq;

        rob_.push(RobEntry{uop.trace_index, seq});
        ++stats_.dispatched;
        --budget;

        // A newly dispatched entry with no outstanding producers can
        // issue next cycle; note it for the O(1) nextEventCycle().
        if (!ready_waiting_ && rob_.size() <= config_.sched_window &&
            deps == 0)
            ready_waiting_ = true;

        if (inst.isBranch() && onBranchDecoded)
            onBranchDecoded(uop.trace_index, now);
    }
}

} // namespace sipre
