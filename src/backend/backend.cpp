#include "backend/backend.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace sipre
{

Backend::Backend(const BackendConfig &config, const Trace &trace,
                 MemoryHierarchy &memory, DecodeQueue &decode_queue)
    : config_(config), trace_(trace), memory_(memory),
      decode_queue_(decode_queue), rob_(config.rob_size)
{
    producers_.fill(kNoProducer);
}

Cycle
Backend::latencyFor(InstClass cls) const
{
    switch (cls) {
      case InstClass::kFp:
        return config_.fp_latency;
      case InstClass::kMul:
        return config_.mul_latency;
      case InstClass::kDiv:
        return config_.div_latency;
      case InstClass::kCondBranch:
      case InstClass::kDirectJump:
      case InstClass::kIndirectJump:
      case InstClass::kCall:
      case InstClass::kIndirectCall:
      case InstClass::kReturn:
        return config_.branch_latency;
      default:
        return config_.alu_latency;
    }
}

Backend::RobEntry *
Backend::entryFor(std::uint64_t seq)
{
    if (rob_.empty())
        return nullptr;
    const std::uint64_t front_seq = rob_.front().seq;
    if (seq < front_seq || seq >= front_seq + rob_.size())
        return nullptr;
    // Dispatch order equals sequence order and pops happen only at the
    // front, so position in the ROB is the sequence offset.
    return &rob_.at(static_cast<std::size_t>(seq - front_seq));
}

bool
Backend::sourcesReady(const RobEntry &entry) const
{
    for (std::uint64_t producer : entry.src_seq) {
        if (producer == kNoProducer)
            continue;
        const RobEntry *other =
            const_cast<Backend *>(this)->entryFor(producer);
        if (other == nullptr)
            continue; // producer already retired
        if (other->state != State::kDone)
            return false;
    }
    return true;
}

void
Backend::markDone(std::uint64_t seq, Cycle now)
{
    RobEntry *entry = entryFor(seq);
    SIPRE_ASSERT(entry != nullptr && entry->seq == seq,
                 "completion for an instruction not in the ROB");
    entry->state = State::kDone;
    entry->done_cycle = now;
    if (trace_[entry->trace_index].isBranch() && onBranchExecuted)
        onBranchExecuted(entry->trace_index, now);
}

void
Backend::tick(Cycle now)
{
    complete(now);
    retire(now);
    issue(now);
    dispatch(now);

    if (rob_.empty())
        ++stats_.empty_rob_cycles;
    if (rob_.full())
        ++stats_.rob_full_cycles;
}

Cycle
Backend::nextEventCycle(Cycle now) const
{
    // Retirement: a completed head retires next cycle.
    if (!rob_.empty() && rob_.front().state == State::kDone)
        return now + 1;

    // Issue: a waiting instruction with possibly-ready sources inside
    // the scheduler window is (re)considered every cycle. The flag is
    // maintained by issue()/dispatch() so no window rescan is needed.
    if (ready_waiting_)
        return now + 1;

    // Fixed-latency completions.
    if (!exec_done_.empty() && exec_done_.top().ready <= now + 1)
        return now + 1;

    // Dispatch: blocked on the decode head's ready_at (or, when the ROB
    // is full, on a retirement event reported above / a memory fill
    // reported by the hierarchy).
    const bool can_dispatch = !decode_queue_.empty() && !rob_.full();
    if (can_dispatch && decode_queue_.front().ready_at <= now + 1)
        return now + 1;

    Cycle next = kNoCycle;
    if (!exec_done_.empty())
        next = std::max(now + 1, exec_done_.top().ready);
    if (can_dispatch) {
        next = std::min(next,
                        std::max(now + 1, decode_queue_.front().ready_at));
    }
    return next;
}

void
Backend::complete(Cycle now)
{
    // Loads returning from the hierarchy.
    auto &done = memory_.dataCompleted();
    for (const MemRequest &req : done) {
        auto it = inflight_loads_.find(req.id);
        if (it == inflight_loads_.end())
            continue;
        markDone(it->second, now);
        inflight_loads_.erase(it);
    }
    done.clear();

    // Fixed-latency operations finishing this cycle.
    while (!exec_done_.empty() && exec_done_.top().ready <= now) {
        const std::uint64_t seq = exec_done_.top().seq;
        exec_done_.pop();
        markDone(seq, now);
    }
}

void
Backend::retire(Cycle now)
{
    (void)now;
    std::uint32_t budget = config_.retire_width;
    while (budget > 0 && !rob_.empty() &&
           rob_.front().state == State::kDone) {
        const RobEntry entry = rob_.pop();
        if (trace_[entry.trace_index].isSwPrefetch())
            ++stats_.retired_sw_prefetches;
        ++stats_.retired;
        ++retired_total_;
        --budget;
    }
}

void
Backend::issue(Cycle now)
{
    std::uint32_t budget = config_.issue_width;
    std::uint32_t load_ports = config_.load_ports;
    std::uint32_t store_ports = config_.store_ports;
    bool leftover = false;

    // Scan a bounded scheduler window from the oldest instruction.
    const std::size_t window =
        std::min<std::size_t>(rob_.size(), config_.sched_window);
    for (std::size_t pos = 0; pos < window && budget > 0; ++pos) {
        RobEntry &entry = rob_.at(pos);
        if (entry.state != State::kWaiting)
            continue;
        if (!sourcesReady(entry))
            continue;

        const TraceInstruction &inst = trace_[entry.trace_index];
        if (inst.isLoad()) {
            if (load_ports == 0 || !memory_.dataCanAccept()) {
                leftover = true; // ready but port/queue-blocked
                continue;
            }
            const ReqId id =
                memory_.issueLoad(inst.mem_addr, now, inst.pc);
            inflight_loads_.emplace(id, entry.seq);
            entry.state = State::kWaitingMem;
            --load_ports;
            ++stats_.loads_issued;
        } else if (inst.isStore()) {
            if (store_ports == 0 || !memory_.dataCanAccept()) {
                leftover = true; // ready but port/queue-blocked
                continue;
            }
            memory_.issueStore(inst.mem_addr, now);
            entry.state = State::kExecuting;
            exec_done_.push(ExecEvent{now + config_.alu_latency, entry.seq});
            --store_ports;
            ++stats_.stores_issued;
        } else {
            entry.state = State::kExecuting;
            exec_done_.push(
                ExecEvent{now + latencyFor(inst.cls), entry.seq});
        }
        --budget;
    }
    // Budget exhaustion may leave further ready entries unscanned;
    // conservatively keep the backend ticking in that case.
    ready_waiting_ = leftover || budget == 0;
}

void
Backend::dispatch(Cycle now)
{
    std::uint32_t budget = config_.dispatch_width;
    while (budget > 0 && !rob_.full() && !decode_queue_.empty() &&
           decode_queue_.front().ready_at <= now) {
        const DecodedUop uop = decode_queue_.pop();
        const TraceInstruction &inst = trace_[uop.trace_index];

        RobEntry entry;
        entry.trace_index = uop.trace_index;
        entry.seq = next_seq_++;
        for (std::size_t s = 0; s < inst.src.size(); ++s) {
            if (inst.src[s] != kNoReg)
                entry.src_seq[s] = producers_[inst.src[s]];
        }
        if (inst.dst != kNoReg)
            producers_[inst.dst] = entry.seq;

        rob_.push(entry);
        ++stats_.dispatched;
        --budget;

        // A newly dispatched entry with no outstanding producers can
        // issue next cycle; note it for the O(1) nextEventCycle().
        if (!ready_waiting_ && rob_.size() <= config_.sched_window &&
            sourcesReady(entry))
            ready_waiting_ = true;

        if (inst.isBranch() && onBranchDecoded)
            onBranchDecoded(uop.trace_index, now);
    }
}

} // namespace sipre
