/**
 * @file
 * Metadata preloading: the first future direction the paper proposes
 * (Sec. VI) to recover software prefetching's benefit on aggressive
 * front-ends without paying the instruction-insertion overhead.
 *
 * Prefetch metadata (trigger line -> target lines) lives in a
 * dedicated LLC-resident structure; a small on-core table caches
 * recently used entries. An L1-I access probes the small table: a hit
 * fires the prefetches immediately; a miss requests the entry from the
 * LLC preloader (one LLC latency) and fires once it arrives.
 */
#ifndef SIPRE_CORE_METADATA_PRELOAD_HPP
#define SIPRE_CORE_METADATA_PRELOAD_HPP

#include <algorithm>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "memory/hierarchy.hpp"
#include "util/types.hpp"

namespace sipre
{

/** Metadata-preloader parameters. */
struct MetadataPreloadConfig
{
    std::uint32_t l1_table_entries = 256; ///< on-core metadata cache
    Cycle metadata_latency = 34;          ///< LLC metadata access time
};

/** Metadata-preloader statistics. */
struct MetadataPreloadStats
{
    std::uint64_t lookups = 0;        ///< L1-I accesses with metadata
    std::uint64_t l1_hits = 0;        ///< found in the on-core table
    std::uint64_t metadata_fills = 0; ///< entries preloaded from LLC
    std::uint64_t prefetches_issued = 0;
};

/**
 * The preloading engine. Driven by the simulator: onL1iAccess() from
 * the L1-I access hook, tick() once per cycle.
 */
class MetadataPreloader
{
  public:
    /** `metadata` maps trigger line -> prefetch target addresses. */
    MetadataPreloader(const MetadataPreloadConfig &config,
                      std::unordered_map<Addr, std::vector<Addr>> metadata);

    /** The L1-I saw a demand access to `line`. */
    void onL1iAccess(Addr line, Cycle now);

    /** Advance one cycle: complete metadata fills, issue prefetches. */
    void tick(Cycle now, MemoryHierarchy &memory);

    /**
     * Earliest future cycle at which the preloader can make progress
     * (a metadata fill arriving or queued prefetches draining);
     * kNoCycle when idle.
     */
    Cycle
    nextEventCycle(Cycle now) const
    {
        if (!prefetch_queue_.empty())
            return now + 1;
        if (!fills_.empty())
            return std::max(now + 1, fills_.top().ready);
        return kNoCycle;
    }

    const MetadataPreloadStats &stats() const { return stats_; }

  private:
    struct PendingFill
    {
        Cycle ready;
        Addr line;

        bool
        operator>(const PendingFill &other) const
        {
            return ready != other.ready ? ready > other.ready
                                        : line > other.line;
        }
    };

    bool l1Contains(Addr line) const;
    void l1Insert(Addr line);

    MetadataPreloadConfig config_;
    std::unordered_map<Addr, std::vector<Addr>> metadata_;

    // Small fully-associative LRU metadata cache.
    struct L1Entry
    {
        Addr line = kNoAddr;
        std::uint64_t stamp = 0;
    };
    std::vector<L1Entry> l1_table_;
    std::uint64_t clock_ = 0;

    std::priority_queue<PendingFill, std::vector<PendingFill>,
                        std::greater<PendingFill>>
        fills_;
    std::unordered_set<Addr> fill_in_flight_;
    std::vector<Addr> prefetch_queue_;
    MetadataPreloadStats stats_;
};

} // namespace sipre

#endif // SIPRE_CORE_METADATA_PRELOAD_HPP
