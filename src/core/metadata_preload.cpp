#include "core/metadata_preload.hpp"

namespace sipre
{

MetadataPreloader::MetadataPreloader(
    const MetadataPreloadConfig &config,
    std::unordered_map<Addr, std::vector<Addr>> metadata)
    : config_(config), metadata_(std::move(metadata)),
      l1_table_(config.l1_table_entries)
{
}

bool
MetadataPreloader::l1Contains(Addr line) const
{
    for (const auto &entry : l1_table_) {
        if (entry.line == line)
            return true;
    }
    return false;
}

void
MetadataPreloader::l1Insert(Addr line)
{
    L1Entry *victim = &l1_table_[0];
    for (auto &entry : l1_table_) {
        if (entry.line == line) {
            entry.stamp = ++clock_;
            return;
        }
        if (entry.line == kNoAddr) {
            victim = &entry;
            break;
        }
        if (entry.stamp < victim->stamp)
            victim = &entry;
    }
    victim->line = line;
    victim->stamp = ++clock_;
}

void
MetadataPreloader::onL1iAccess(Addr line, Cycle now)
{
    auto it = metadata_.find(line);
    if (it == metadata_.end())
        return;
    ++stats_.lookups;

    if (l1Contains(line)) {
        ++stats_.l1_hits;
        l1Insert(line); // refresh recency
        for (Addr target : it->second)
            prefetch_queue_.push_back(target);
        return;
    }
    // Request the metadata entry from the LLC preloader.
    if (fill_in_flight_.insert(line).second)
        fills_.push(PendingFill{now + config_.metadata_latency, line});
}

void
MetadataPreloader::tick(Cycle now, MemoryHierarchy &memory)
{
    while (!fills_.empty() && fills_.top().ready <= now) {
        const Addr line = fills_.top().line;
        fills_.pop();
        fill_in_flight_.erase(line);
        l1Insert(line);
        ++stats_.metadata_fills;
        // Fire the prefetches now that the metadata arrived.
        auto it = metadata_.find(line);
        if (it != metadata_.end()) {
            for (Addr target : it->second)
                prefetch_queue_.push_back(target);
        }
    }

    // Bounded prefetch-issue bandwidth (2 per cycle).
    int budget = 2;
    while (budget > 0 && !prefetch_queue_.empty()) {
        memory.issueIPrefetch(prefetch_queue_.front(), now);
        prefetch_queue_.erase(prefetch_queue_.begin());
        ++stats_.prefetches_issued;
        --budget;
    }
}

} // namespace sipre
