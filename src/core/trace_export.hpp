/**
 * @file
 * Glue between simulation results and the Chrome trace document: turns
 * a SimResult's ScenarioTimeline into a stacked counter track (one
 * point per window, time axis = simulated cycles) that
 * trace_obs::buildChromeTrace emits alongside the wall-clock spans.
 * Shared by `sipre_cli --trace-out` and `GET /jobs/<id>/trace` so both
 * surfaces produce the same schema.
 */
#ifndef SIPRE_CORE_TRACE_EXPORT_HPP
#define SIPRE_CORE_TRACE_EXPORT_HPP

#include <string>

#include "frontend/scenario_timeline.hpp"
#include "trace_obs/chrome_trace.hpp"

namespace sipre
{

/**
 * One counter series from a recorded timeline. `label` names the track
 * (e.g. "ftq scenarios: secret_srv12/industry"). An empty timeline
 * yields a series with no points, which buildChromeTrace renders as
 * just the track metadata.
 */
trace_obs::CounterSeries
scenarioCounterSeries(const ScenarioTimeline &timeline,
                      const std::string &label);

} // namespace sipre

#endif // SIPRE_CORE_TRACE_EXPORT_HPP
