#include "core/simulator.hpp"

#include "util/logging.hpp"

namespace sipre
{

namespace
{
/** Decode-queue capacity between fetch and dispatch. */
constexpr std::size_t kDecodeQueueSize = 64;

/** Cycles without retirement progress before declaring a deadlock. */
constexpr Cycle kDeadlockThreshold = 1'000'000;
} // namespace

Simulator::Simulator(const SimConfig &config, const Trace &trace)
    : config_(config), trace_(trace)
{
    memory_ = std::make_unique<MemoryHierarchy>(config_.memory);
    decode_queue_ = std::make_unique<DecodeQueue>(kDecodeQueueSize);
    frontend_ = std::make_unique<DecoupledFrontEnd>(
        config_.frontend, trace_, *memory_, *decode_queue_);
    backend_ = std::make_unique<Backend>(config_.backend, trace_, *memory_,
                                         *decode_queue_);

    backend_->onBranchDecoded = [this](std::uint64_t index, Cycle now) {
        frontend_->onBranchDecoded(index, now);
    };
    backend_->onBranchExecuted = [this](std::uint64_t index, Cycle now) {
        frontend_->onBranchExecuted(index, now);
    };
}

void
Simulator::setSwPrefetchTriggers(const SwPrefetchTriggers *triggers)
{
    frontend_->setSwPrefetchTriggers(triggers);
}

void
Simulator::attachMetadataPreloader(
    const MetadataPreloadConfig &config,
    std::unordered_map<Addr, std::vector<Addr>> metadata)
{
    preloader_ =
        std::make_unique<MetadataPreloader>(config, std::move(metadata));
    // Chain onto any existing L1-I access hook (e.g. a HW prefetcher).
    auto previous = memory_->l1i().onAccess;
    memory_->l1i().onAccess = [this, previous](Addr line, AccessType type,
                                               bool hit) {
        if (previous)
            previous(line, type, hit);
        if (type == AccessType::kIFetch)
            preloader_->onL1iAccess(line, current_cycle_);
    };
}

void
Simulator::setL1iMissHook(std::function<void(Addr)> hook)
{
    memory_->l1i().onDemandMiss =
        [hook = std::move(hook)](Addr line, AccessType type) {
            if (type == AccessType::kIFetch)
                hook(line);
        };
}

SimResult
Simulator::run()
{
    const std::uint64_t total = trace_.size();
    const std::uint64_t warmup = static_cast<std::uint64_t>(
        static_cast<double>(total) * config_.warmup_fraction);
    Cycle cycle = 0;
    Cycle warmup_cycles = 0;
    bool warm = warmup == 0;
    std::uint64_t last_retired = 0;
    Cycle last_progress = 0;

    while (backend_->retired() < total) {
        current_cycle_ = cycle;
        memory_->tick(cycle);
        if (preloader_)
            preloader_->tick(cycle, *memory_);
        backend_->tick(cycle);
        frontend_->tick(cycle);

        if (backend_->retired() != last_retired) {
            last_retired = backend_->retired();
            last_progress = cycle;
        } else if (cycle - last_progress > kDeadlockThreshold) {
            panic("simulator deadlock: no retirement progress");
        }
        ++cycle;

        if (!warm && backend_->retired() >= warmup) {
            // End of warmup: zero every event counter but keep all
            // microarchitectural state (caches, BTB, predictor tables).
            warm = true;
            warmup_cycles = cycle;
            frontend_->resetStats();
            backend_->resetStats();
            memory_->l1i().resetStats();
            memory_->l1d().resetStats();
            memory_->l2().resetStats();
            memory_->llc().resetStats();
            memory_->dram().resetStats();
        }
    }

    SimResult result;
    result.workload = trace_.name();
    result.config_label = config_.label;
    result.instructions = backend_->stats().retired;
    result.effective_instructions =
        result.instructions - backend_->stats().retired_sw_prefetches;
    result.cycles = cycle - warmup_cycles;
    result.frontend = frontend_->stats();
    result.backend = backend_->stats();
    result.branch = frontend_->branchUnit().stats();
    result.btb = frontend_->branchUnit().btb().stats();
    result.l1i = memory_->l1i().stats();
    result.l1d = memory_->l1d().stats();
    result.l2 = memory_->l2().stats();
    result.llc = memory_->llc().stats();
    return result;
}

} // namespace sipre
