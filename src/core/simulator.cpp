#include "core/simulator.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "hwpf/builder.hpp"
#include "trace_obs/recorder.hpp"
#include "util/logging.hpp"

namespace sipre
{

namespace
{
/** Decode-queue capacity between fetch and dispatch. */
constexpr std::size_t kDecodeQueueSize = 64;

/** Cycles without retirement progress before declaring a deadlock. */
constexpr Cycle kDeadlockThreshold = 1'000'000;
} // namespace

Simulator::Simulator(const SimConfig &config, const Trace &trace)
    : config_(config), trace_(trace)
{
    memory_ = std::make_unique<MemoryHierarchy>(config_.memory);
    decode_queue_ = std::make_unique<DecodeQueue>(kDecodeQueueSize);
    frontend_ = std::make_unique<DecoupledFrontEnd>(
        config_.frontend, trace_, *memory_, *decode_queue_);
    backend_ = std::make_unique<Backend>(config_.backend, trace_, *memory_,
                                         *decode_queue_);
    memory_->setProfiler(&profile_);

    // The hwpf-managed prefetcher kinds need the front-end (FTQ walk,
    // iTLB), so the hierarchy factory left the slot empty for them and
    // they are assembled and wired here.
    auto built = hwpf::buildPrefetchers(config_.memory.l1i_prefetcher);
    if (!built.components.empty()) {
        if (built.ftq_observer != nullptr) {
            frontend_->setFtqObserver(built.ftq_observer,
                                      built.fdip_lookahead_blocks,
                                      built.fdip_walk_blocks_per_cycle);
        }
        for (auto *wrapper : built.tlb_aware)
            wrapper->setTlb(frontend_->itlb());
        memory_->l1i().setDemotePrefetchFills(built.demote_fills);
        for (auto &pf : built.components)
            memory_->installIPrefetcher(std::move(pf));
    }

    // The poke flag tells the fast-forward loop that the back-end
    // mutated front-end state mid-cycle (stall resume, PFC), so the
    // front-end must tick this cycle even if its cached claim says it
    // has nothing to do.
    backend_->onBranchDecoded = [this](std::uint64_t index, Cycle now) {
        frontend_poked_ = true;
        frontend_->onBranchDecoded(index, now);
    };
    backend_->onBranchExecuted = [this](std::uint64_t index, Cycle now) {
        frontend_poked_ = true;
        frontend_->onBranchExecuted(index, now);
    };
}

void
Simulator::setSwPrefetchTriggers(const SwPrefetchTriggers *triggers)
{
    frontend_->setSwPrefetchTriggers(triggers);
}

void
Simulator::attachMetadataPreloader(
    const MetadataPreloadConfig &config,
    std::unordered_map<Addr, std::vector<Addr>> metadata)
{
    preloader_ =
        std::make_unique<MetadataPreloader>(config, std::move(metadata));
    // Chain onto any existing L1-I access hook (e.g. a HW prefetcher).
    auto previous = memory_->l1i().onAccess;
    memory_->l1i().onAccess = [this, previous](Addr line, AccessType type,
                                               bool hit) {
        if (previous)
            previous(line, type, hit);
        if (type == AccessType::kIFetch)
            preloader_->onL1iAccess(line, current_cycle_);
    };
}

void
Simulator::setL1iMissHook(std::function<void(Addr)> hook)
{
    memory_->l1i().onDemandMiss =
        [hook = std::move(hook)](Addr line, AccessType type) {
            if (type == AccessType::kIFetch)
                hook(line);
        };
}

Cycle
Simulator::nextEventCycle(Cycle now) const
{
    // Short-circuit: once any component reports the very next cycle,
    // no earlier answer is possible, so skip the remaining (and more
    // expensive) scans. Ordered cheapest first.
    Cycle next = memory_->nextEventCycle(now);
    if (next <= now + 1)
        return next;
    if (preloader_) {
        next = std::min(next, preloader_->nextEventCycle(now));
        if (next <= now + 1)
            return next;
    }
    next = std::min(next, backend_->nextEventCycle(now));
    if (next <= now + 1)
        return next;
    next = std::min(next, frontend_->nextEventCycle(now));
    return next;
}

SimResult
Simulator::run()
{
    trace_obs::Span span("sim.run", "core");
    span.arg("workload", trace_.name());
    span.arg("config", config_.label);

    const std::uint64_t total = trace_.size();
    const std::uint64_t warmup = static_cast<std::uint64_t>(
        static_cast<double>(total) * config_.warmup_fraction);
    const bool fast_forward =
        config_.fast_forward && std::getenv("SIPRE_NO_SKIP") == nullptr;
    Cycle cycle = 0;
    Cycle warmup_cycles = 0;
    bool warm = warmup == 0;
    std::uint64_t last_retired = 0;
    Cycle last_progress = 0;
    // Cached per-component claims (absolute cycle of the earliest
    // possible activity). A component ticks only when its claim is due
    // or a cross-component input arrived; its claim is recomputed only
    // after it (or a producer feeding it) actually ticked. Initialized
    // to 0 so every component ticks at cycle 0.
    Cycle c_mem = 0;
    Cycle c_be = 0;
    Cycle c_fe = 0;
    frontend_poked_ = false;

    while (backend_->retired() < total) {
        current_cycle_ = cycle;
        if (!fast_forward) {
            memory_->tick(cycle);
            if (preloader_) {
                ProfScope scope(&profile_, ProfComponent::kPreloader);
                preloader_->tick(cycle, *memory_);
            }
            {
                ProfScope scope(&profile_, ProfComponent::kBackend);
                backend_->tick(cycle);
            }
            {
                ProfScope scope(&profile_, ProfComponent::kFrontend);
                frontend_->tick(cycle);
            }
        } else {
            bool mem_ticked = false;
            bool pre_ticked = false;
            bool be_ticked = false;
            bool fe_ticked = false;
            if (c_mem <= cycle) {
                memory_->tick(cycle);
                mem_ticked = true;
            }
            // The preloader's queue is fed by the L1-I access hook
            // (fires inside the memory tick), so its claim is always
            // evaluated fresh — it is two queue checks.
            if (preloader_ &&
                (cycle == 0 ||
                 preloader_->nextEventCycle(cycle - 1) <= cycle)) {
                ProfScope scope(&profile_, ProfComponent::kPreloader);
                preloader_->tick(cycle, *memory_);
                pre_ticked = true;
            }
            // Completion ports must drain in the cycle the fill
            // arrived, exactly as in the reference order.
            const std::size_t decode_before = decode_queue_->size();
            if (c_be <= cycle || !memory_->dataCompleted().empty()) {
                ProfScope scope(&profile_, ProfComponent::kBackend);
                backend_->tick(cycle);
                be_ticked = true;
            } else {
                backend_->accountSkippedCycles(1);
            }
            // A dispatch pop can unblock delivery into a previously
            // full decode queue within the same cycle.
            if (c_fe <= cycle || frontend_poked_ ||
                decode_queue_->size() < decode_before ||
                !memory_->ifetchCompleted().empty()) {
                ProfScope scope(&profile_, ProfComponent::kFrontend);
                frontend_->tick(cycle);
                fe_ticked = true;
            } else {
                frontend_->accountSkippedCycles(1);
            }
            frontend_poked_ = false;
            // Refresh claims for components whose state (or whose
            // inputs) changed this cycle. Core ticks can enqueue into
            // the memory system; only the front-end feeds the decode
            // queue; the back-end only pokes the front-end through the
            // branch callbacks handled above.
            if (mem_ticked || pre_ticked || be_ticked || fe_ticked)
                c_mem = memory_->nextEventCycle(cycle);
            if (be_ticked || fe_ticked)
                c_be = backend_->nextEventCycle(cycle);
            if (fe_ticked)
                c_fe = frontend_->nextEventCycle(cycle);
        }
        if (onCycleEnd)
            onCycleEnd(cycle);

        if (backend_->retired() != last_retired) {
            last_retired = backend_->retired();
            last_progress = cycle;
        } else if (cycle - last_progress > kDeadlockThreshold) {
            panic("simulator deadlock: no retirement progress for " +
                  std::to_string(cycle - last_progress) +
                  " cycles at cycle " + std::to_string(cycle) +
                  " (workload '" + trace_.name() + "', config '" +
                  config_.label + "', retired " +
                  std::to_string(backend_->retired()) + "/" +
                  std::to_string(total) + ")");
        }
        ++cycle;

        if (!warm && backend_->retired() >= warmup) {
            // End of warmup: zero every event counter but keep all
            // microarchitectural state (caches, BTB, predictor tables).
            warm = true;
            warmup_cycles = cycle;
            frontend_->resetStats();
            backend_->resetStats();
            memory_->l1i().resetStats();
            memory_->l1d().resetStats();
            memory_->l2().resetStats();
            memory_->llc().resetStats();
            memory_->dram().resetStats();
            for (auto &pf : memory_->iprefetchers())
                pf->resetStats();
        }

        if (!fast_forward || backend_->retired() >= total)
            continue;

        // Exact-result fast-forward: every cycle in [cycle, next) would
        // be a pure no-op tick — each component reported it cannot act
        // before `next` — so account the per-cycle counters in bulk and
        // jump the clock. Capped at the deadlock horizon so a genuinely
        // wedged machine still reaches the panic above at the same
        // cycle the reference loop would.
        Cycle next = std::min(c_mem, std::min(c_be, c_fe));
        if (preloader_)
            next = std::min(next, preloader_->nextEventCycle(cycle - 1));
        if (next <= cycle)
            continue;
        const Cycle horizon = last_progress + kDeadlockThreshold + 1;
        next = std::min(next, horizon);
        frontend_->accountSkippedCycles(next - cycle);
        backend_->accountSkippedCycles(next - cycle);
        cycle = next;
    }

    SimResult result;
    result.workload = trace_.name();
    result.config_label = config_.label;
    result.instructions = backend_->stats().retired;
    result.effective_instructions =
        result.instructions - backend_->stats().retired_sw_prefetches;
    result.cycles = cycle - warmup_cycles;
    result.frontend = frontend_->stats();
    result.backend = backend_->stats();
    result.branch = frontend_->branchUnit().stats();
    result.btb = frontend_->branchUnit().btb().stats();
    result.l1i = memory_->l1i().stats();
    result.l1d = memory_->l1d().stats();
    result.l2 = memory_->l2().stats();
    result.llc = memory_->llc().stats();
    for (const auto &pf : memory_->iprefetchers())
        result.hwpf.push_back(pf->counters());
    result.scenario_timeline = frontend_->scenarioTimeline();
    return result;
}

} // namespace sipre
