/**
 * @file
 * Aggregated results of one simulation run: the raw material for every
 * figure in the paper's evaluation.
 */
#ifndef SIPRE_CORE_SIM_RESULT_HPP
#define SIPRE_CORE_SIM_RESULT_HPP

#include <cstdint>
#include <string>

#include "backend/backend.hpp"
#include "branch/unit.hpp"
#include "frontend/frontend_stats.hpp"
#include "frontend/scenario_timeline.hpp"
#include "memory/cache.hpp"

namespace sipre
{

/** Everything measured during one Simulator::run(). */
struct SimResult
{
    std::string workload;
    std::string config_label;

    std::uint64_t instructions = 0; ///< retired instructions
    std::uint64_t cycles = 0;

    /**
     * Instructions counted for IPC purposes. When software prefetches
     * are inserted into the trace, the paper excludes them from the IPC
     * numerator ("We do not include the additional instructions AsmDB
     * inserts when calculating its IPC"), so this holds the original
     * (non-prefetch) instruction count.
     */
    std::uint64_t effective_instructions = 0;

    FrontendStats frontend;
    BackendStats backend;
    BranchUnitStats branch;
    BtbStats btb;
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    CacheStats llc;

    /**
     * Windowed FTQ-scenario attribution (empty with window_size 0
     * unless Simulator::enableScenarioTimeline was called — the
     * default, so cached results and differential runs are unaffected).
     */
    ScenarioTimeline scenario_timeline;

    /** IPC over the paper's instruction accounting. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(effective_instructions) /
                                 static_cast<double>(cycles);
    }

    /** L1-I demand misses per kilo (effective) instruction. */
    double
    l1iMpki() const
    {
        return effective_instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(l1i.misses) /
                         static_cast<double>(effective_instructions);
    }

    /** Conditional-branch mispredictions per kilo-instruction. */
    double
    branchMpki() const
    {
        return effective_instructions == 0
                   ? 0.0
                   : 1000.0 *
                         static_cast<double>(branch.cond_mispredictions) /
                         static_cast<double>(effective_instructions);
    }
};

} // namespace sipre

#endif // SIPRE_CORE_SIM_RESULT_HPP
