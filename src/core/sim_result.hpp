/**
 * @file
 * Aggregated results of one simulation run: the raw material for every
 * figure in the paper's evaluation.
 */
#ifndef SIPRE_CORE_SIM_RESULT_HPP
#define SIPRE_CORE_SIM_RESULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "branch/unit.hpp"
#include "frontend/frontend_stats.hpp"
#include "frontend/scenario_timeline.hpp"
#include "memory/cache.hpp"
#include "memory/dram.hpp"
#include "memory/iprefetcher.hpp"
#include "util/statistics.hpp"

namespace sipre
{

/**
 * Shared-memory contention counters of a multi-core run: the view of
 * the one LLC and DRAM that all cores contend for, with per-core
 * attribution. Empty (zero counters, empty vectors) on single-core
 * results.
 */
struct SharedMemStats
{
    CacheStats llc;          ///< the shared LLC (also per-core llc field)
    DramStats dram;          ///< the shared DRAM
    /** Demand hits/misses observed at the shared LLC, per core. */
    std::vector<std::uint64_t> llc_core_hits;
    std::vector<std::uint64_t> llc_core_misses;
    /** Memory-controller arbitration: round-robin grants per core port. */
    std::vector<std::uint64_t> port_grants;
    /** Requests that had to wait in a port queue (vs pass through). */
    std::vector<std::uint64_t> port_queued;
    /** DRAM queue occupancy, sampled once per executed shared tick. */
    Log2Histogram dram_queue_depth;
};

/** Everything measured during one Simulator::run(). */
struct SimResult
{
    std::string workload;
    std::string config_label;

    std::uint64_t instructions = 0; ///< retired instructions
    std::uint64_t cycles = 0;

    /**
     * Instructions counted for IPC purposes. When software prefetches
     * are inserted into the trace, the paper excludes them from the IPC
     * numerator ("We do not include the additional instructions AsmDB
     * inserts when calculating its IPC"), so this holds the original
     * (non-prefetch) instruction count.
     */
    std::uint64_t effective_instructions = 0;

    FrontendStats frontend;
    BackendStats backend;
    BranchUnitStats branch;
    BtbStats btb;
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    CacheStats llc;

    /**
     * Per-component hardware instruction-prefetcher counters, in L1-I
     * installation order. Empty when no hardware prefetcher ran
     * (iprefetcher=none), which keeps pre-existing results and cache
     * keys byte-identical. coverage = useful / (useful + l1i.misses)
     * is computed at report time, where both counts are in hand.
     */
    std::vector<HwPrefetchCounters> hwpf;

    /**
     * Windowed FTQ-scenario attribution (empty with window_size 0
     * unless Simulator::enableScenarioTimeline was called — the
     * default, so cached results and differential runs are unaffected).
     */
    ScenarioTimeline scenario_timeline;

    /**
     * Multi-core co-run extension. Empty for single-core runs. When a
     * MultiCoreSimulator produced this result, core_results holds one
     * full per-core SimResult (its llc field duplicates the shared LLC
     * stats) and the top level aggregates: instructions/effective are
     * sums, cycles is the slowest core, the cache/front-end/back-end
     * counters are element-wise sums, and llc is the shared LLC.
     */
    std::vector<SimResult> core_results;
    SharedMemStats shared_mem;

    /** Number of cores that produced this result. */
    std::uint32_t
    cores() const
    {
        return core_results.empty()
                   ? 1u
                   : static_cast<std::uint32_t>(core_results.size());
    }

    /** IPC over the paper's instruction accounting. */
    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(effective_instructions) /
                                 static_cast<double>(cycles);
    }

    /** L1-I demand misses per kilo (effective) instruction. */
    double
    l1iMpki() const
    {
        return effective_instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(l1i.misses) /
                         static_cast<double>(effective_instructions);
    }

    /** Conditional-branch mispredictions per kilo-instruction. */
    double
    branchMpki() const
    {
        return effective_instructions == 0
                   ? 0.0
                   : 1000.0 *
                         static_cast<double>(branch.cond_mispredictions) /
                         static_cast<double>(effective_instructions);
    }
};

} // namespace sipre

#endif // SIPRE_CORE_SIM_RESULT_HPP
