#include "core/json_io.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "core/options.hpp"

namespace sipre
{

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::kObject)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

// ----------------------------------------------------------------- parser

namespace
{

/** Recursive-descent parser over a string_view; tracks a byte offset. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string &error)
    {
        if (!parseValue(out, /*depth=*/0)) {
            error = error_;
            return false;
        }
        skipWhitespace();
        if (pos_ != text_.size()) {
            error = fail("trailing characters after JSON document");
            return false;
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    std::string
    fail(const std::string &what)
    {
        error_ = what + " at byte " + std::to_string(pos_);
        return error_;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseLiteral(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal) {
            fail("invalid literal");
            return false;
        }
        pos_ += literal.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"')) {
            fail("expected '\"'");
            return false;
        }
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return false;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad hex digit in \\u escape");
                        return false;
                    }
                }
                // Encode the BMP code point as UTF-8 (surrogate pairs
                // are not needed for the request schema).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                fail("unknown escape sequence");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
            pos_ = start;
            fail("invalid number");
            return false;
        }
        out.kind = JsonValue::Kind::kNumber;
        out.number = value;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth) {
            fail("document nested too deeply");
            return false;
        }
        skipWhitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::kObject;
            skipWhitespace();
            if (consume('}'))
                return true;
            for (;;) {
                skipWhitespace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWhitespace();
                if (!consume(':')) {
                    fail("expected ':'");
                    return false;
                }
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.object.emplace_back(std::move(key),
                                        std::move(member));
                skipWhitespace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                fail("expected ',' or '}'");
                return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::kArray;
            skipWhitespace();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue element;
                if (!parseValue(element, depth + 1))
                    return false;
                out.array.push_back(std::move(element));
                skipWhitespace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                fail("expected ',' or ']'");
                return false;
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::kString;
            return parseString(out.string);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            return parseLiteral("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
            return parseLiteral("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::kNull;
            return parseLiteral("null");
        }
        return parseNumber(out);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    out = JsonValue{};
    JsonParser parser(text);
    return parser.parse(out, error);
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
jsonDouble(double value)
{
    if (!std::isfinite(value))
        return "0";
    std::ostringstream oss;
    oss << std::setprecision(std::numeric_limits<double>::max_digits10)
        << value;
    return oss.str();
}

bool
jsonToUint(const JsonValue &value, std::uint64_t &out)
{
    if (!value.isNumber())
        return false;
    if (value.number < 0.0 || value.number != std::floor(value.number) ||
        value.number > 9.007199254740992e15) // 2^53
        return false;
    out = static_cast<std::uint64_t>(value.number);
    return true;
}

std::string
jsonStringArray(const std::vector<std::string> &items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0)
            out += ',';
        out += '"';
        out += jsonEscape(items[i]);
        out += '"';
    }
    out += ']';
    return out;
}

std::string
jsonUIntArray(const std::vector<std::uint64_t> &items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0)
            out += ',';
        out += std::to_string(items[i]);
    }
    out += ']';
    return out;
}

std::string
jsonBoolArray(const std::vector<bool> &items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0)
            out += ',';
        out += items[i] ? "true" : "false";
    }
    out += ']';
    return out;
}

// ------------------------------------------------------------ serializers

namespace
{

void
writeRunningStat(std::ostream &os, const RunningStat &s)
{
    os << "{\"count\":" << s.count() << ",\"sum\":" << jsonDouble(s.sum())
       << ",\"min\":" << jsonDouble(s.min())
       << ",\"max\":" << jsonDouble(s.max())
       << ",\"mean\":" << jsonDouble(s.mean()) << "}";
}

void
writeHistogramJson(std::ostream &os, const Histogram &h)
{
    os << "{\"width\":" << h.width() << ",\"sum\":" << h.sum()
       << ",\"counts\":[";
    for (std::size_t i = 0; i <= h.buckets(); ++i) {
        if (i != 0)
            os << ',';
        os << h.count(i);
    }
    os << "]}";
}

void
writeCacheJson(std::ostream &os, const CacheStats &c)
{
    os << "{\"accesses\":" << c.accesses << ",\"hits\":" << c.hits
       << ",\"misses\":" << c.misses
       << ",\"mshr_merges\":" << c.mshr_merges
       << ",\"prefetch_requests\":" << c.prefetch_requests
       << ",\"prefetch_hits\":" << c.prefetch_hits
       << ",\"prefetch_fills\":" << c.prefetch_fills
       << ",\"prefetch_useful\":" << c.prefetch_useful
       << ",\"prefetch_late\":" << c.prefetch_late
       << ",\"evictions\":" << c.evictions
       << ",\"writebacks_out\":" << c.writebacks_out
       << ",\"writebacks_in\":" << c.writebacks_in << "}";
}

/**
 * Everything in a result object except the closing brace, so the
 * multi-core serializer can append its sections. Single-core output is
 * byte-identical to what this wrote before multi-core existed.
 */
void
writeResultJsonBody(std::ostream &os, const SimResult &r)
{
    os << "{\"workload\":\"" << jsonEscape(r.workload)
       << "\",\"config_label\":\"" << jsonEscape(r.config_label)
       << "\",\"instructions\":" << r.instructions
       << ",\"effective_instructions\":" << r.effective_instructions
       << ",\"cycles\":" << r.cycles
       << ",\"ipc\":" << jsonDouble(r.ipc())
       << ",\"l1i_mpki\":" << jsonDouble(r.l1iMpki())
       << ",\"branch_mpki\":" << jsonDouble(r.branchMpki());

    const FrontendStats &f = r.frontend;
    os << ",\"frontend\":{\"scenario1_cycles\":" << f.scenario1_cycles
       << ",\"scenario2_cycles\":" << f.scenario2_cycles
       << ",\"scenario3_cycles\":" << f.scenario3_cycles
       << ",\"ftq_empty_cycles\":" << f.ftq_empty_cycles
       << ",\"head_stall_cycles\":" << f.head_stall_cycles
       << ",\"waiting_entry_events\":" << f.waiting_entry_events
       << ",\"partial_head_events\":" << f.partial_head_events
       << ",\"l1i_fetches_issued\":" << f.l1i_fetches_issued
       << ",\"l1i_fetches_merged\":" << f.l1i_fetches_merged
       << ",\"blocks_allocated\":" << f.blocks_allocated
       << ",\"instructions_delivered\":" << f.instructions_delivered
       << ",\"sw_prefetches_triggered\":" << f.sw_prefetches_triggered
       << ",\"mispredict_stalls\":" << f.mispredict_stalls
       << ",\"btb_miss_stalls\":" << f.btb_miss_stalls
       << ",\"stall_cycles_mispredict\":" << f.stall_cycles_mispredict
       << ",\"stall_cycles_btb_miss\":" << f.stall_cycles_btb_miss
       << ",\"pfc_resumes\":" << f.pfc_resumes
       << ",\"wrong_path_prefetches\":" << f.wrong_path_prefetches
       << ",\"itlb_walks\":" << f.itlb_walks
       << ",\"head_fetch_latency\":";
    writeRunningStat(os, f.head_fetch_latency);
    os << ",\"nonhead_fetch_latency\":";
    writeRunningStat(os, f.nonhead_fetch_latency);
    os << ",\"head_latency_hist\":";
    writeHistogramJson(os, f.head_latency_hist);
    os << ",\"nonhead_latency_hist\":";
    writeHistogramJson(os, f.nonhead_latency_hist);
    os << "}";

    os << ",\"backend\":{\"retired\":" << r.backend.retired
       << ",\"retired_sw_prefetches\":" << r.backend.retired_sw_prefetches
       << ",\"dispatched\":" << r.backend.dispatched
       << ",\"loads_issued\":" << r.backend.loads_issued
       << ",\"stores_issued\":" << r.backend.stores_issued
       << ",\"rob_full_cycles\":" << r.backend.rob_full_cycles
       << ",\"empty_rob_cycles\":" << r.backend.empty_rob_cycles << "}";

    os << ",\"branch\":{\"cond_predictions\":" << r.branch.cond_predictions
       << ",\"cond_mispredictions\":" << r.branch.cond_mispredictions
       << ",\"btb_miss_taken\":" << r.branch.btb_miss_taken
       << ",\"target_mispredictions\":" << r.branch.target_mispredictions
       << "}";

    os << ",\"btb\":{\"lookups\":" << r.btb.lookups
       << ",\"hits\":" << r.btb.hits << ",\"updates\":" << r.btb.updates
       << ",\"evictions\":" << r.btb.evictions << "}";

    os << ",\"l1i\":";
    writeCacheJson(os, r.l1i);
    os << ",\"l1d\":";
    writeCacheJson(os, r.l1d);
    os << ",\"l2\":";
    writeCacheJson(os, r.l2);
    os << ",\"llc\":";
    writeCacheJson(os, r.llc);
    // Present only when a hardware prefetcher ran, so unprefetched
    // results serialize byte-identically to pre-hwpf output.
    if (!r.hwpf.empty()) {
        os << ",\"hwpf\":[";
        for (std::size_t i = 0; i < r.hwpf.size(); ++i) {
            const HwPrefetchCounters &c = r.hwpf[i];
            if (i != 0)
                os << ',';
            os << "{\"name\":\"" << jsonEscape(c.name)
               << "\",\"issued\":" << c.issued
               << ",\"filtered\":" << c.filtered
               << ",\"dropped_overflow\":" << c.dropped_overflow
               << ",\"dropped_redirect\":" << c.dropped_redirect
               << ",\"dropped_tlb\":" << c.dropped_tlb
               << ",\"deferred_tlb\":" << c.deferred_tlb
               << ",\"useful\":" << c.useful << ",\"late\":" << c.late
               << ",\"polluting\":" << c.polluting
               << ",\"demoted_fills\":" << c.demoted_fills
               << ",\"accuracy\":" << jsonDouble(c.accuracy()) << "}";
        }
        os << "]";
    }
    // Always present (window_size 0 + empty windows when the feature
    // was off) so served and direct serializations stay byte-identical.
    os << ",\"scenario_timeline\":{\"window_size\":"
       << r.scenario_timeline.window_size << ",\"windows\":[";
    for (std::size_t i = 0; i < r.scenario_timeline.windows.size(); ++i) {
        const ScenarioWindow &w = r.scenario_timeline.windows[i];
        if (i != 0)
            os << ",";
        os << "{\"start_cycle\":" << w.start_cycle;
        for (std::size_t s = 0; s < kFtqScenarioCount; ++s) {
            os << ",\"" << ftqScenarioName(static_cast<FtqScenario>(s))
               << "\":" << w.cycles[s];
        }
        os << "}";
    }
    os << "]}";
}

} // namespace

std::string
simResultToJson(const SimResult &r)
{
    std::ostringstream os;
    writeResultJsonBody(os, r);
    if (!r.core_results.empty()) {
        const SharedMemStats &s = r.shared_mem;
        os << ",\"cores\":" << r.core_results.size()
           << ",\"shared_mem\":{\"llc\":";
        writeCacheJson(os, s.llc);
        os << ",\"dram\":{\"reads\":" << s.dram.reads
           << ",\"writebacks\":" << s.dram.writebacks
           << ",\"row_hits\":" << s.dram.row_hits
           << ",\"row_misses\":" << s.dram.row_misses << "}"
           << ",\"llc_core_hits\":" << jsonUIntArray(s.llc_core_hits)
           << ",\"llc_core_misses\":" << jsonUIntArray(s.llc_core_misses)
           << ",\"port_grants\":" << jsonUIntArray(s.port_grants)
           << ",\"port_queued\":" << jsonUIntArray(s.port_queued)
           << ",\"dram_queue_depth\":{\"sum\":" << s.dram_queue_depth.sum()
           << ",\"counts\":[";
        for (std::size_t i = 0; i < s.dram_queue_depth.buckets(); ++i) {
            if (i != 0)
                os << ',';
            os << s.dram_queue_depth.count(i);
        }
        os << "]}}";
        os << ",\"core_results\":[";
        for (std::size_t i = 0; i < r.core_results.size(); ++i) {
            if (i != 0)
                os << ',';
            writeResultJsonBody(os, r.core_results[i]);
            os << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

std::string
simConfigToJson(const SimConfig &config)
{
    std::ostringstream os;
    os << "{\"label\":\"" << jsonEscape(config.label)
       << "\",\"ftq_entries\":" << config.frontend.ftq_entries
       << ",\"predictor\":\""
       << predictorName(config.frontend.branch.direction)
       << "\",\"hw_prefetcher\":\""
       << hwPrefetcherName(config.memory.l1i_prefetcher)
       << "\",\"pfc\":" << (config.frontend.pfc ? "true" : "false")
       << ",\"ghr_filter\":"
       << (config.frontend.branch.ghr_filter_btb_miss ? "true" : "false")
       << ",\"wrong_path\":"
       << (config.frontend.wrong_path_fetch ? "true" : "false")
       << ",\"warmup_fraction\":" << jsonDouble(config.warmup_fraction)
       << ",\"fast_forward\":"
       << (config.fast_forward ? "true" : "false") << "}";
    return os.str();
}

} // namespace sipre
