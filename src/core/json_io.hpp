/**
 * @file
 * JSON interchange for simulation results and configurations: one
 * stable machine-readable schema shared by `sipre_cli --json`, the
 * simulation service, and scripts consuming either. Also provides the
 * minimal JSON value/parser the service uses for request bodies — no
 * external dependencies.
 */
#ifndef SIPRE_CORE_JSON_IO_HPP
#define SIPRE_CORE_JSON_IO_HPP

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/sim_result.hpp"

namespace sipre
{

// ----------------------------------------------------------- generic JSON

/** A parsed JSON document node (tree-owning, no sharing). */
struct JsonValue
{
    enum class Kind : std::uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return kind == Kind::kObject; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isString() const { return kind == Kind::kString; }
    bool isBool() const { return kind == Kind::kBool; }
    bool isNumber() const { return kind == Kind::kNumber; }

    /** Member lookup on an object; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;
};

/**
 * Parse a complete JSON document (trailing whitespace allowed, trailing
 * garbage rejected). On failure returns false and sets `error` to a
 * human-readable message with a byte offset.
 */
bool parseJson(std::string_view text, JsonValue &out, std::string &error);

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string jsonEscape(std::string_view s);

/**
 * Format a double with max_digits10 precision so the value survives a
 * text round-trip bit-exactly (same policy as the campaign cache).
 */
std::string jsonDouble(double value);

/**
 * Extract a non-negative integer from a parsed JSON number, rejecting
 * negatives, fractions, and values past 2^53 (where doubles stop being
 * exact). Shared by the service request parser and the jobs sweep-spec
 * parser so "what counts as an integer" has one definition.
 */
bool jsonToUint(const JsonValue &value, std::uint64_t &out);

// Array builders for sweep specs and other list-valued documents.
// Escaping and numeric formatting match the scalar helpers above.
std::string jsonStringArray(const std::vector<std::string> &items);
std::string jsonUIntArray(const std::vector<std::uint64_t> &items);
std::string jsonBoolArray(const std::vector<bool> &items);

// ------------------------------------------------------------ serializers

/**
 * The full SimResult as a JSON object: every counter, running-stat
 * aggregate, and histogram bucket, plus the derived ipc / l1i_mpki /
 * branch_mpki conveniences. Field order is fixed, so two identical
 * results serialize to byte-identical documents.
 */
std::string simResultToJson(const SimResult &result);

/** The knobs of a SimConfig relevant to request canonicalization. */
std::string simConfigToJson(const SimConfig &config);

} // namespace sipre

#endif // SIPRE_CORE_JSON_IO_HPP
