/**
 * @file
 * Whole-simulator configuration, including the paper's two front-end
 * presets: the conservative FDP (2-entry FTQ, as in prior software-
 * prefetching evaluations) and the industry-standard FDP (24-entry FTQ,
 * per Ishii et al. / Table I's Sunny-Cove-like core).
 */
#ifndef SIPRE_CORE_CONFIG_HPP
#define SIPRE_CORE_CONFIG_HPP

#include <string>

#include "backend/backend.hpp"
#include "frontend/frontend.hpp"
#include "memory/hierarchy.hpp"

namespace sipre
{

/** Complete configuration of one simulated core + memory system. */
struct SimConfig
{
    std::string label = "industry";
    FrontendConfig frontend;
    BackendConfig backend;
    HierarchyConfig memory;

    /**
     * Fraction of the trace used to warm caches, BTB, and predictors
     * before statistics collection begins (ChampSim-style warmup).
     */
    double warmup_fraction = 0.2;

    /**
     * Event-driven cycle skipping: when every component reports that it
     * cannot make progress before cycle T, jump the clock straight to T
     * instead of ticking the dead cycles one by one. Results are
     * bit-identical to the cycle-by-cycle reference loop (per-cycle
     * counters are accounted in bulk over the skipped span). Set to
     * false — or export SIPRE_NO_SKIP=1 — to force the reference loop
     * for debugging.
     */
    bool fast_forward = true;

    /**
     * The conservative front-end of prior software-prefetching work:
     * identical machine, but the FTQ holds only two basic blocks so
     * fetch can barely run ahead of decode.
     */
    static SimConfig
    conservative()
    {
        SimConfig config;
        config.label = "conservative-ftq2";
        config.frontend.ftq_entries = 2;
        return config;
    }

    /**
     * The industry-standard decoupled front-end (Table I): 24-entry FTQ
     * (192 32-bit instructions of run-ahead), GHR filtering, and
     * post-fetch correction.
     */
    static SimConfig
    industry()
    {
        SimConfig config;
        config.label = "industry-ftq24";
        config.frontend.ftq_entries = 24;
        return config;
    }

    /** Same machine with an arbitrary FTQ depth (for ablations). */
    static SimConfig
    withFtqDepth(std::uint32_t entries)
    {
        SimConfig config;
        config.label = "ftq" + std::to_string(entries);
        config.frontend.ftq_entries = entries;
        return config;
    }
};

} // namespace sipre

#endif // SIPRE_CORE_CONFIG_HPP
