#include "core/result_compare.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

namespace sipre
{

namespace
{

/** Accumulates the first mismatch; later checks become no-ops. */
class Differ
{
  public:
    template <typename T>
    void
    check(const std::string &field, const T &a, const T &b)
    {
        if (!diff_.empty() || a == b)
            return;
        std::ostringstream oss;
        oss << std::setprecision(std::numeric_limits<double>::max_digits10)
            << field << ": " << a << " != " << b;
        diff_ = oss.str();
    }

    void
    check(const std::string &field, const RunningStat &a,
          const RunningStat &b)
    {
        check(field + ".count", a.count(), b.count());
        check(field + ".sum", a.sum(), b.sum());
        check(field + ".min", a.min(), b.min());
        check(field + ".max", a.max(), b.max());
    }

    void
    check(const std::string &field, const Histogram &a, const Histogram &b)
    {
        check(field + ".width", a.width(), b.width());
        check(field + ".buckets", a.buckets(), b.buckets());
        check(field + ".total", a.total(), b.total());
        check(field + ".sum", a.sum(), b.sum());
        check(field + ".overflow", a.overflow(), b.overflow());
        if (!diff_.empty())
            return;
        for (std::size_t i = 0; i < a.buckets(); ++i) {
            check(field + ".count[" + std::to_string(i) + "]", a.count(i),
                  b.count(i));
        }
    }

    void
    check(const std::string &field, const CacheStats &a,
          const CacheStats &b)
    {
        check(field + ".accesses", a.accesses, b.accesses);
        check(field + ".hits", a.hits, b.hits);
        check(field + ".misses", a.misses, b.misses);
        check(field + ".mshr_merges", a.mshr_merges, b.mshr_merges);
        check(field + ".prefetch_requests", a.prefetch_requests,
              b.prefetch_requests);
        check(field + ".prefetch_hits", a.prefetch_hits, b.prefetch_hits);
        check(field + ".prefetch_fills", a.prefetch_fills,
              b.prefetch_fills);
        check(field + ".prefetch_useful", a.prefetch_useful,
              b.prefetch_useful);
        check(field + ".prefetch_late", a.prefetch_late, b.prefetch_late);
        check(field + ".evictions", a.evictions, b.evictions);
        check(field + ".writebacks_out", a.writebacks_out,
              b.writebacks_out);
        check(field + ".writebacks_in", a.writebacks_in, b.writebacks_in);
    }

    const std::string &result() const { return diff_; }

  private:
    std::string diff_;
};

/** Field-exact comparison of one result's scalar body under prefix p. */
void
checkResult(Differ &d, const std::string &p, const SimResult &a,
            const SimResult &b)
{
    d.check(p + "workload", a.workload, b.workload);
    d.check(p + "config_label", a.config_label, b.config_label);
    d.check(p + "instructions", a.instructions, b.instructions);
    d.check(p + "cycles", a.cycles, b.cycles);
    d.check(p + "effective_instructions", a.effective_instructions,
            b.effective_instructions);

    const FrontendStats &fa = a.frontend;
    const FrontendStats &fb = b.frontend;
    d.check(p + "frontend.scenario1_cycles", fa.scenario1_cycles,
            fb.scenario1_cycles);
    d.check(p + "frontend.scenario2_cycles", fa.scenario2_cycles,
            fb.scenario2_cycles);
    d.check(p + "frontend.scenario3_cycles", fa.scenario3_cycles,
            fb.scenario3_cycles);
    d.check(p + "frontend.ftq_empty_cycles", fa.ftq_empty_cycles,
            fb.ftq_empty_cycles);
    d.check(p + "frontend.head_stall_cycles", fa.head_stall_cycles,
            fb.head_stall_cycles);
    d.check(p + "frontend.waiting_entry_events", fa.waiting_entry_events,
            fb.waiting_entry_events);
    d.check(p + "frontend.partial_head_events", fa.partial_head_events,
            fb.partial_head_events);
    d.check(p + "frontend.head_fetch_latency", fa.head_fetch_latency,
            fb.head_fetch_latency);
    d.check(p + "frontend.nonhead_fetch_latency", fa.nonhead_fetch_latency,
            fb.nonhead_fetch_latency);
    d.check(p + "frontend.head_latency_hist", fa.head_latency_hist,
            fb.head_latency_hist);
    d.check(p + "frontend.nonhead_latency_hist", fa.nonhead_latency_hist,
            fb.nonhead_latency_hist);
    d.check(p + "frontend.l1i_fetches_issued", fa.l1i_fetches_issued,
            fb.l1i_fetches_issued);
    d.check(p + "frontend.l1i_fetches_merged", fa.l1i_fetches_merged,
            fb.l1i_fetches_merged);
    d.check(p + "frontend.blocks_allocated", fa.blocks_allocated,
            fb.blocks_allocated);
    d.check(p + "frontend.instructions_delivered", fa.instructions_delivered,
            fb.instructions_delivered);
    d.check(p + "frontend.sw_prefetches_triggered",
            fa.sw_prefetches_triggered, fb.sw_prefetches_triggered);
    d.check(p + "frontend.mispredict_stalls", fa.mispredict_stalls,
            fb.mispredict_stalls);
    d.check(p + "frontend.btb_miss_stalls", fa.btb_miss_stalls,
            fb.btb_miss_stalls);
    d.check(p + "frontend.stall_cycles_mispredict",
            fa.stall_cycles_mispredict, fb.stall_cycles_mispredict);
    d.check(p + "frontend.stall_cycles_btb_miss", fa.stall_cycles_btb_miss,
            fb.stall_cycles_btb_miss);
    d.check(p + "frontend.pfc_resumes", fa.pfc_resumes, fb.pfc_resumes);
    d.check(p + "frontend.wrong_path_prefetches", fa.wrong_path_prefetches,
            fb.wrong_path_prefetches);
    d.check(p + "frontend.itlb_walks", fa.itlb_walks, fb.itlb_walks);

    d.check(p + "backend.retired", a.backend.retired, b.backend.retired);
    d.check(p + "backend.retired_sw_prefetches",
            a.backend.retired_sw_prefetches,
            b.backend.retired_sw_prefetches);
    d.check(p + "backend.dispatched", a.backend.dispatched,
            b.backend.dispatched);
    d.check(p + "backend.loads_issued", a.backend.loads_issued,
            b.backend.loads_issued);
    d.check(p + "backend.stores_issued", a.backend.stores_issued,
            b.backend.stores_issued);
    d.check(p + "backend.rob_full_cycles", a.backend.rob_full_cycles,
            b.backend.rob_full_cycles);
    d.check(p + "backend.empty_rob_cycles", a.backend.empty_rob_cycles,
            b.backend.empty_rob_cycles);

    d.check(p + "branch.cond_predictions", a.branch.cond_predictions,
            b.branch.cond_predictions);
    d.check(p + "branch.cond_mispredictions", a.branch.cond_mispredictions,
            b.branch.cond_mispredictions);
    d.check(p + "branch.btb_miss_taken", a.branch.btb_miss_taken,
            b.branch.btb_miss_taken);
    d.check(p + "branch.target_mispredictions",
            a.branch.target_mispredictions, b.branch.target_mispredictions);

    d.check(p + "btb.lookups", a.btb.lookups, b.btb.lookups);
    d.check(p + "btb.hits", a.btb.hits, b.btb.hits);
    d.check(p + "btb.updates", a.btb.updates, b.btb.updates);
    d.check(p + "btb.evictions", a.btb.evictions, b.btb.evictions);

    d.check(p + "l1i", a.l1i, b.l1i);
    d.check(p + "l1d", a.l1d, b.l1d);
    d.check(p + "l2", a.l2, b.l2);
    d.check(p + "llc", a.llc, b.llc);

    d.check(p + "hwpf.size", a.hwpf.size(), b.hwpf.size());
    for (std::size_t i = 0; i < std::min(a.hwpf.size(), b.hwpf.size());
         ++i) {
        const std::string prefix = p + "hwpf[" + std::to_string(i) + "]";
        const HwPrefetchCounters &ha = a.hwpf[i];
        const HwPrefetchCounters &hb = b.hwpf[i];
        d.check(prefix + ".name", ha.name, hb.name);
        d.check(prefix + ".issued", ha.issued, hb.issued);
        d.check(prefix + ".filtered", ha.filtered, hb.filtered);
        d.check(prefix + ".dropped_overflow", ha.dropped_overflow,
                hb.dropped_overflow);
        d.check(prefix + ".dropped_redirect", ha.dropped_redirect,
                hb.dropped_redirect);
        d.check(prefix + ".dropped_tlb", ha.dropped_tlb, hb.dropped_tlb);
        d.check(prefix + ".deferred_tlb", ha.deferred_tlb,
                hb.deferred_tlb);
        d.check(prefix + ".useful", ha.useful, hb.useful);
        d.check(prefix + ".late", ha.late, hb.late);
        d.check(prefix + ".polluting", ha.polluting, hb.polluting);
        d.check(prefix + ".demoted_fills", ha.demoted_fills,
                hb.demoted_fills);
    }

    const ScenarioTimeline &ta = a.scenario_timeline;
    const ScenarioTimeline &tb = b.scenario_timeline;
    d.check(p + "scenario_timeline.window_size", ta.window_size,
            tb.window_size);
    d.check(p + "scenario_timeline.windows", ta.windows.size(),
            tb.windows.size());
    for (std::size_t i = 0;
         i < std::min(ta.windows.size(), tb.windows.size()); ++i) {
        const std::string prefix =
            p + "scenario_timeline.windows[" + std::to_string(i) + "]";
        d.check(prefix + ".start_cycle", ta.windows[i].start_cycle,
                tb.windows[i].start_cycle);
        for (std::size_t s = 0; s < kFtqScenarioCount; ++s) {
            d.check(prefix + "." +
                        ftqScenarioName(static_cast<FtqScenario>(s)),
                    ta.windows[i].cycles[s], tb.windows[i].cycles[s]);
        }
    }
}

void
checkVector(Differ &d, const std::string &field,
            const std::vector<std::uint64_t> &a,
            const std::vector<std::uint64_t> &b)
{
    d.check(field + ".size", a.size(), b.size());
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        d.check(field + "[" + std::to_string(i) + "]", a[i], b[i]);
}

void
checkLog2(Differ &d, const std::string &field, const Log2Histogram &a,
          const Log2Histogram &b)
{
    d.check(field + ".total", a.total(), b.total());
    d.check(field + ".sum", a.sum(), b.sum());
    for (std::size_t i = 0; i < a.buckets(); ++i)
        d.check(field + ".count[" + std::to_string(i) + "]", a.count(i),
                b.count(i));
}

} // namespace

std::string
diffSimResults(const SimResult &a, const SimResult &b)
{
    Differ d;
    checkResult(d, "", a, b);

    const SharedMemStats &sa = a.shared_mem;
    const SharedMemStats &sb = b.shared_mem;
    d.check("shared_mem.llc", sa.llc, sb.llc);
    d.check("shared_mem.dram.reads", sa.dram.reads, sb.dram.reads);
    d.check("shared_mem.dram.writebacks", sa.dram.writebacks,
            sb.dram.writebacks);
    d.check("shared_mem.dram.row_hits", sa.dram.row_hits,
            sb.dram.row_hits);
    d.check("shared_mem.dram.row_misses", sa.dram.row_misses,
            sb.dram.row_misses);
    checkVector(d, "shared_mem.llc_core_hits", sa.llc_core_hits,
                sb.llc_core_hits);
    checkVector(d, "shared_mem.llc_core_misses", sa.llc_core_misses,
                sb.llc_core_misses);
    checkVector(d, "shared_mem.port_grants", sa.port_grants,
                sb.port_grants);
    checkVector(d, "shared_mem.port_queued", sa.port_queued,
                sb.port_queued);
    checkLog2(d, "shared_mem.dram_queue_depth", sa.dram_queue_depth,
              sb.dram_queue_depth);

    d.check("core_results.size", a.core_results.size(),
            b.core_results.size());
    for (std::size_t i = 0;
         i < std::min(a.core_results.size(), b.core_results.size()); ++i) {
        checkResult(d, "core[" + std::to_string(i) + "].",
                    a.core_results[i], b.core_results[i]);
    }
    return d.result();
}

} // namespace sipre
