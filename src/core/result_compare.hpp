/**
 * @file
 * Field-exact comparison of two SimResults. Used by the differential
 * test and bench_throughput to prove that the event-driven fast-forward
 * path (SimConfig::fast_forward) is bit-identical to the reference
 * cycle-by-cycle loop.
 */
#ifndef SIPRE_CORE_RESULT_COMPARE_HPP
#define SIPRE_CORE_RESULT_COMPARE_HPP

#include <string>

#include "core/sim_result.hpp"

namespace sipre
{

/**
 * Compare every field of two results, including histogram buckets and
 * running-stat aggregates (doubles compared bit-exactly). Returns ""
 * when identical, otherwise "<field>: <a-value> != <b-value>" for the
 * first difference found.
 */
std::string diffSimResults(const SimResult &a, const SimResult &b);

} // namespace sipre

#endif // SIPRE_CORE_RESULT_COMPARE_HPP
