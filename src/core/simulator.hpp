/**
 * @file
 * The Simulator facade: wires front-end, back-end, and memory together
 * and runs a trace to completion. This is the primary public API of the
 * library.
 */
#ifndef SIPRE_CORE_SIMULATOR_HPP
#define SIPRE_CORE_SIMULATOR_HPP

#include <functional>
#include <memory>

#include "backend/backend.hpp"
#include "core/config.hpp"
#include "core/metadata_preload.hpp"
#include "core/sim_result.hpp"
#include "frontend/frontend.hpp"
#include "memory/hierarchy.hpp"
#include "trace/trace.hpp"

namespace sipre
{

/**
 * One simulated core executing one trace.
 *
 * Typical use:
 * @code
 *   Trace trace = synth::generateTrace(spec, 1'000'000);
 *   Simulator sim(SimConfig::industry(), trace);
 *   SimResult result = sim.run();
 * @endcode
 */
class Simulator
{
  public:
    Simulator(const SimConfig &config, const Trace &trace);

    /**
     * Attach a no-overhead software-prefetch trigger map (AsmDB's
     * idealized mode). Must be called before run(). The map must
     * outlive the simulator.
     */
    void setSwPrefetchTriggers(const SwPrefetchTriggers *triggers);

    /**
     * Subscribe to L1-I demand misses (the AsmDB profiler's hook).
     * Fires with the missing line address.
     */
    void setL1iMissHook(std::function<void(Addr line_addr)> hook);

    /**
     * Attach a metadata preloader (paper Sec. VI): prefetch metadata
     * keyed by trigger line, preloaded from the LLC instead of being
     * carried by inserted instructions. Call before run().
     */
    void attachMetadataPreloader(
        const MetadataPreloadConfig &config,
        std::unordered_map<Addr, std::vector<Addr>> metadata);

    /** Stats of the attached preloader (null when none attached). */
    const MetadataPreloadStats *metadataStats() const
    {
        return preloader_ ? &preloader_->stats() : nullptr;
    }

    /**
     * Turn on windowed FTQ-scenario attribution (off by default): every
     * simulated cycle's taxonomy class is bucketed into `window`-cycle
     * windows published as SimResult::scenario_timeline. `window` of 0
     * turns it back off. Call before run(). Enabling it never changes
     * any other result field — the differential tests depend on that.
     */
    void enableScenarioTimeline(std::uint32_t window)
    {
        frontend_->enableScenarioTimeline(window);
    }

    /** Run the whole trace to retirement and collect results. */
    SimResult run();

    /**
     * Earliest future cycle at which any component can make progress
     * (the fast-forward aggregation point; exposed for tests).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Instrumentation hook: fired once per executed cycle, after all
     * components ticked. Skipped (fast-forwarded) cycles do not fire.
     */
    std::function<void(Cycle now)> onCycleEnd;

    /** Access to internals for tests and advanced instrumentation. */
    MemoryHierarchy &memory() { return *memory_; }
    DecoupledFrontEnd &frontend() { return *frontend_; }
    Backend &backend() { return *backend_; }

    /**
     * Per-component wall-clock attribution of this simulator's run.
     * Populated only while the process-wide CycleProfiler is armed
     * (sipre_cli --profile or SIPRE_PROFILE); empty otherwise.
     */
    const ProfileAccumulator &profile() const { return profile_; }

  private:
    SimConfig config_;
    const Trace &trace_;
    std::unique_ptr<MemoryHierarchy> memory_;
    std::unique_ptr<DecodeQueue> decode_queue_;
    std::unique_ptr<DecoupledFrontEnd> frontend_;
    std::unique_ptr<Backend> backend_;
    std::unique_ptr<MetadataPreloader> preloader_;
    Cycle current_cycle_ = 0;
    ProfileAccumulator profile_;
    /// Set when a back-end branch callback mutated front-end state this
    /// cycle; forces a front-end tick in the fast-forward loop.
    bool frontend_poked_ = false;
};

} // namespace sipre

#endif // SIPRE_CORE_SIMULATOR_HPP
