#include "core/experiment.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "asmdb/pipeline.hpp"
#include "core/simulator.hpp"
#include "trace/synth/workload.hpp"
#include "util/logging.hpp"

namespace sipre
{

namespace
{

/**
 * Parse a size from the environment. Only fully numeric values are
 * accepted; anything else (including trailing junk like "100k") keeps
 * the fallback and warns on stderr, so a typo degrades loudly instead
 * of silently running a different experiment.
 */
std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    for (const char *p = value; *p != '\0'; ++p) {
        if (!std::isdigit(static_cast<unsigned char>(*p))) {
            std::cerr << "[sipre] ignoring " << name << "='" << value
                      << "': not a non-negative integer, using "
                      << fallback << "\n";
            return fallback;
        }
    }
    return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

// ------------------------------------------------------------ serializer

void
writeHistogram(std::ostream &os, const Histogram &h)
{
    os << h.sum();
    for (std::size_t i = 0; i <= h.buckets(); ++i)
        os << ' ' << h.count(i);
}

void
readHistogram(std::istream &is, Histogram &h)
{
    std::uint64_t sum = 0;
    is >> sum;
    std::vector<std::uint64_t> counts(h.buckets() + 1, 0);
    for (auto &c : counts)
        is >> c;
    if (is)
        h.restore(counts, sum);
}

void
writeFrontend(std::ostream &os, const FrontendStats &f)
{
    os << f.scenario1_cycles << ' ' << f.scenario2_cycles << ' '
       << f.scenario3_cycles << ' ' << f.ftq_empty_cycles << ' '
       << f.head_stall_cycles << ' ' << f.waiting_entry_events << ' '
       << f.partial_head_events << ' ' << f.l1i_fetches_issued << ' '
       << f.l1i_fetches_merged << ' ' << f.blocks_allocated << ' '
       << f.instructions_delivered << ' ' << f.sw_prefetches_triggered
       << ' ' << f.mispredict_stalls << ' ' << f.btb_miss_stalls << ' '
       << f.stall_cycles_mispredict << ' ' << f.stall_cycles_btb_miss
       << ' ' << f.pfc_resumes << ' ' << f.wrong_path_prefetches << ' '
       << f.head_fetch_latency.count() << ' '
       << f.head_fetch_latency.sum() << ' '
       << f.head_fetch_latency.min() << ' '
       << f.head_fetch_latency.max() << ' '
       << f.nonhead_fetch_latency.count() << ' '
       << f.nonhead_fetch_latency.sum() << ' '
       << f.nonhead_fetch_latency.min() << ' '
       << f.nonhead_fetch_latency.max() << ' ' << f.itlb_walks << ' ';
    writeHistogram(os, f.head_latency_hist);
    os << ' ';
    writeHistogram(os, f.nonhead_latency_hist);
}

void
readFrontend(std::istream &is, FrontendStats &f)
{
    std::uint64_t hc, nc;
    double hs, hmin, hmax, ns, nmin, nmax;
    is >> f.scenario1_cycles >> f.scenario2_cycles >> f.scenario3_cycles >>
        f.ftq_empty_cycles >> f.head_stall_cycles >>
        f.waiting_entry_events >> f.partial_head_events >>
        f.l1i_fetches_issued >> f.l1i_fetches_merged >>
        f.blocks_allocated >> f.instructions_delivered >>
        f.sw_prefetches_triggered >> f.mispredict_stalls >>
        f.btb_miss_stalls >> f.stall_cycles_mispredict >>
        f.stall_cycles_btb_miss >> f.pfc_resumes >>
        f.wrong_path_prefetches >> hc >> hs >> hmin >> hmax >> nc >> ns >>
        nmin >> nmax >> f.itlb_walks;
    f.head_fetch_latency.restore(hc, hs, hmin, hmax);
    f.nonhead_fetch_latency.restore(nc, ns, nmin, nmax);
    readHistogram(is, f.head_latency_hist);
    readHistogram(is, f.nonhead_latency_hist);
}

void
writeCache(std::ostream &os, const CacheStats &c)
{
    os << c.accesses << ' ' << c.hits << ' ' << c.misses << ' '
       << c.mshr_merges << ' ' << c.prefetch_requests << ' '
       << c.prefetch_hits << ' ' << c.prefetch_fills << ' '
       << c.prefetch_useful << ' ' << c.prefetch_late << ' '
       << c.evictions << ' ' << c.writebacks_out << ' '
       << c.writebacks_in;
}

void
readCache(std::istream &is, CacheStats &c)
{
    is >> c.accesses >> c.hits >> c.misses >> c.mshr_merges >>
        c.prefetch_requests >> c.prefetch_hits >> c.prefetch_fills >>
        c.prefetch_useful >> c.prefetch_late >> c.evictions >>
        c.writebacks_out >> c.writebacks_in;
}

void
writeResultBody(std::ostream &os, const SimResult &r)
{
    // Both labels are single whitespace-free tokens by construction.
    os << r.workload << ' ' << r.config_label << ' ';
    os << r.instructions << ' ' << r.effective_instructions << ' '
       << r.cycles << ' ';
    writeFrontend(os, r.frontend);
    os << ' ';
    os << r.backend.retired << ' ' << r.backend.retired_sw_prefetches
       << ' ' << r.backend.dispatched << ' ' << r.backend.loads_issued
       << ' ' << r.backend.stores_issued << ' '
       << r.backend.rob_full_cycles << ' ' << r.backend.empty_rob_cycles
       << ' ';
    os << r.branch.cond_predictions << ' ' << r.branch.cond_mispredictions
       << ' ' << r.branch.btb_miss_taken << ' '
       << r.branch.target_mispredictions << ' ';
    os << r.btb.lookups << ' ' << r.btb.hits << ' ' << r.btb.updates
       << ' ' << r.btb.evictions << ' ';
    writeCache(os, r.l1i);
    os << ' ';
    writeCache(os, r.l1d);
    os << ' ';
    writeCache(os, r.l2);
    os << ' ';
    writeCache(os, r.llc);
    // Scenario timeline (v5): tagged section so a garbled record fails
    // loudly instead of shifting every following field.
    os << " tl " << r.scenario_timeline.window_size << ' '
       << r.scenario_timeline.windows.size();
    for (const ScenarioWindow &w : r.scenario_timeline.windows) {
        os << ' ' << w.start_cycle;
        for (const std::uint64_t c : w.cycles)
            os << ' ' << c;
    }
    // Hardware-prefetcher counters: written only when a component ran,
    // so every record produced before this section existed — and every
    // iprefetcher=none record after it — is byte-identical and the
    // cache version needn't change.
    if (!r.hwpf.empty()) {
        os << " hwpf " << r.hwpf.size();
        for (const HwPrefetchCounters &c : r.hwpf) {
            os << ' ' << c.name << ' ' << c.issued << ' ' << c.filtered
               << ' ' << c.dropped_overflow << ' ' << c.dropped_redirect
               << ' ' << c.dropped_tlb << ' ' << c.deferred_tlb << ' '
               << c.useful << ' ' << c.late << ' ' << c.polluting << ' '
               << c.demoted_fills;
        }
    }
}

void
writeU64Vector(std::ostream &os, const std::vector<std::uint64_t> &v)
{
    os << ' ' << v.size();
    for (const std::uint64_t x : v)
        os << ' ' << x;
}

/**
 * Full record (v6): the single-core body plus a tagged "mc" section
 * with the per-core results and the shared LLC/DRAM contention view.
 * Single-core results write "mc 0" so every record has the same shape.
 */
void
writeResult(std::ostream &os, const SimResult &r)
{
    writeResultBody(os, r);
    os << " mc " << r.core_results.size();
    if (!r.core_results.empty()) {
        os << ' ';
        writeCache(os, r.shared_mem.llc);
        os << ' ' << r.shared_mem.dram.reads << ' '
           << r.shared_mem.dram.writebacks << ' '
           << r.shared_mem.dram.row_hits << ' '
           << r.shared_mem.dram.row_misses;
        writeU64Vector(os, r.shared_mem.llc_core_hits);
        writeU64Vector(os, r.shared_mem.llc_core_misses);
        writeU64Vector(os, r.shared_mem.port_grants);
        writeU64Vector(os, r.shared_mem.port_queued);
        os << ' ' << r.shared_mem.dram_queue_depth.sum();
        for (std::size_t i = 0; i < r.shared_mem.dram_queue_depth.buckets();
             ++i)
            os << ' ' << r.shared_mem.dram_queue_depth.count(i);
        for (const SimResult &core : r.core_results) {
            os << ' ';
            writeResultBody(os, core);
        }
    }
    os << '\n';
}

/**
 * Windows past this are a forged/garbled record, not a real timeline
 * (also bounds the allocation a hostile record can demand before the
 * stream check catches it).
 */
constexpr std::uint64_t kMaxTimelineWindows = 1'048'576;

void
readResultBody(std::istream &is, SimResult &r)
{
    is >> r.workload >> r.config_label;
    is >> r.instructions >> r.effective_instructions >> r.cycles;
    readFrontend(is, r.frontend);
    is >> r.backend.retired >> r.backend.retired_sw_prefetches >>
        r.backend.dispatched >> r.backend.loads_issued >>
        r.backend.stores_issued >> r.backend.rob_full_cycles >>
        r.backend.empty_rob_cycles;
    is >> r.branch.cond_predictions >> r.branch.cond_mispredictions >>
        r.branch.btb_miss_taken >> r.branch.target_mispredictions;
    is >> r.btb.lookups >> r.btb.hits >> r.btb.updates >> r.btb.evictions;
    readCache(is, r.l1i);
    readCache(is, r.l1d);
    readCache(is, r.l2);
    readCache(is, r.llc);
    std::string tag;
    std::uint64_t windows = 0;
    is >> tag;
    if (tag != "tl") {
        is.setstate(std::ios::failbit);
        return;
    }
    is >> r.scenario_timeline.window_size >> windows;
    if (!is || windows > kMaxTimelineWindows) {
        is.setstate(std::ios::failbit);
        return;
    }
    r.scenario_timeline.windows.assign(static_cast<std::size_t>(windows),
                                       ScenarioWindow{});
    for (ScenarioWindow &w : r.scenario_timeline.windows) {
        is >> w.start_cycle;
        for (std::uint64_t &c : w.cycles)
            is >> c;
    }
    // Optional hwpf section: absent on unprefetched records (and on
    // every record written before the section existed), so look ahead
    // and rewind when the next token is something else.
    const std::istream::pos_type mark = is.tellg();
    std::string hwpf_tag;
    if (!(is >> hwpf_tag) || hwpf_tag != "hwpf") {
        is.clear();
        is.seekg(mark);
        return;
    }
    std::uint64_t components = 0;
    is >> components;
    if (!is || components > 255) { // the pf_origin tag is a uint8_t
        is.setstate(std::ios::failbit);
        return;
    }
    r.hwpf.assign(static_cast<std::size_t>(components),
                  HwPrefetchCounters{});
    for (HwPrefetchCounters &c : r.hwpf) {
        is >> c.name >> c.issued >> c.filtered >> c.dropped_overflow >>
            c.dropped_redirect >> c.dropped_tlb >> c.deferred_tlb >>
            c.useful >> c.late >> c.polluting >> c.demoted_fills;
    }
}

/** Core counts past this are a garbled record, not a real machine. */
constexpr std::uint64_t kMaxSerializedCores = 256;

void
readU64Vector(std::istream &is, std::vector<std::uint64_t> &v)
{
    std::uint64_t n = 0;
    is >> n;
    if (!is || n > kMaxSerializedCores) {
        is.setstate(std::ios::failbit);
        return;
    }
    v.assign(static_cast<std::size_t>(n), 0);
    for (std::uint64_t &x : v)
        is >> x;
}

void
readResult(std::istream &is, SimResult &r)
{
    readResultBody(is, r);
    std::string tag;
    std::uint64_t cores = 0;
    is >> tag;
    if (tag != "mc") {
        is.setstate(std::ios::failbit);
        return;
    }
    is >> cores;
    if (!is || cores > kMaxSerializedCores) {
        is.setstate(std::ios::failbit);
        return;
    }
    if (cores == 0)
        return;
    readCache(is, r.shared_mem.llc);
    is >> r.shared_mem.dram.reads >> r.shared_mem.dram.writebacks >>
        r.shared_mem.dram.row_hits >> r.shared_mem.dram.row_misses;
    readU64Vector(is, r.shared_mem.llc_core_hits);
    readU64Vector(is, r.shared_mem.llc_core_misses);
    readU64Vector(is, r.shared_mem.port_grants);
    readU64Vector(is, r.shared_mem.port_queued);
    std::uint64_t depth_sum = 0;
    is >> depth_sum;
    std::vector<std::uint64_t> depth_counts(
        r.shared_mem.dram_queue_depth.buckets(), 0);
    for (std::uint64_t &c : depth_counts)
        is >> c;
    if (is)
        r.shared_mem.dram_queue_depth.restore(depth_counts, depth_sum);
    r.core_results.assign(static_cast<std::size_t>(cores), SimResult{});
    for (SimResult &core : r.core_results)
        readResultBody(is, core);
}

} // namespace

void
writeSimResultText(std::ostream &os, const SimResult &result)
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    writeResult(os, result);
}

bool
readSimResultText(std::istream &is, SimResult &result)
{
    readResult(is, result);
    return static_cast<bool>(is);
}

std::string
campaignCachePath(const CampaignOptions &options)
{
    std::ostringstream oss;
    oss << options.cache_dir << "/sipre_campaign_v"
        << kCampaignCacheVersion << "_w" << options.workloads << "_i"
        << options.instructions << ".cache";
    return oss.str();
}

bool
loadCampaign(const CampaignOptions &options, CampaignResult &result)
{
    std::ifstream is(campaignCachePath(options));
    if (!is)
        return false;
    std::size_t n = 0;
    int version = 0;
    is >> version >> n;
    if (version != kCampaignCacheVersion || n != options.workloads)
        return false;
    result.workloads.resize(n);
    for (auto &rec : result.workloads) {
        is >> rec.name;
        readResult(is, rec.cons);
        readResult(is, rec.industry);
        readResult(is, rec.asmdb_cons);
        readResult(is, rec.asmdb_cons_ideal);
        readResult(is, rec.asmdb_ind);
        readResult(is, rec.asmdb_ind_ideal);
        is >> rec.static_bloat_cons >> rec.dynamic_bloat_cons >>
            rec.static_bloat_ind >> rec.dynamic_bloat_ind >>
            rec.insertions_ind >> rec.plan_min_distance_ind;
    }
    return static_cast<bool>(is);
}

void
saveCampaign(const CampaignOptions &options, const CampaignResult &result)
{
    std::ofstream os(campaignCachePath(options));
    if (!os)
        return;
    // Doubles (bloat ratios, latency sums) must survive the text
    // round-trip exactly; max_digits10 guarantees that.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << kCampaignCacheVersion << ' ' << result.workloads.size() << '\n';
    for (const auto &rec : result.workloads) {
        os << rec.name << '\n';
        writeResult(os, rec.cons);
        writeResult(os, rec.industry);
        writeResult(os, rec.asmdb_cons);
        writeResult(os, rec.asmdb_cons_ideal);
        writeResult(os, rec.asmdb_ind);
        writeResult(os, rec.asmdb_ind_ideal);
        os << rec.static_bloat_cons << ' ' << rec.dynamic_bloat_cons << ' '
           << rec.static_bloat_ind << ' ' << rec.dynamic_bloat_ind << ' '
           << rec.insertions_ind << ' ' << rec.plan_min_distance_ind
           << '\n';
    }
}

namespace
{

WorkloadRecord
runOneWorkload(const synth::WorkloadSpec &spec, std::size_t instructions,
               bool fast_forward)
{
    WorkloadRecord rec;
    rec.name = spec.name;
    const Trace trace = synth::generateTrace(spec, instructions);

    SimConfig cons = SimConfig::conservative();
    SimConfig industry = SimConfig::industry();
    cons.fast_forward = fast_forward;
    industry.fast_forward = fast_forward;

    {
        Simulator sim(cons, trace);
        rec.cons = sim.run();
    }
    {
        Simulator sim(industry, trace);
        rec.industry = sim.run();
    }

    // AsmDB pipeline per baseline (profiled on the machine it targets).
    {
        auto art = asmdb::runPipeline(trace, cons);
        rec.static_bloat_cons = art.rewrite.staticBloat();
        rec.dynamic_bloat_cons = art.rewrite.dynamicBloat();
        {
            Simulator sim(cons, art.rewrite.trace);
            rec.asmdb_cons = sim.run();
        }
        {
            Simulator sim(cons, trace);
            sim.setSwPrefetchTriggers(&art.triggers);
            rec.asmdb_cons_ideal = sim.run();
        }
    }
    {
        auto art = asmdb::runPipeline(trace, industry);
        rec.static_bloat_ind = art.rewrite.staticBloat();
        rec.dynamic_bloat_ind = art.rewrite.dynamicBloat();
        rec.insertions_ind = art.plan.insertions.size();
        rec.plan_min_distance_ind = art.plan.min_distance;
        {
            Simulator sim(industry, art.rewrite.trace);
            rec.asmdb_ind = sim.run();
        }
        {
            Simulator sim(industry, trace);
            sim.setSwPrefetchTriggers(&art.triggers);
            rec.asmdb_ind_ideal = sim.run();
        }
    }
    return rec;
}

} // namespace

CampaignOptions
CampaignOptions::fromEnv()
{
    CampaignOptions options;
    options.workloads = envSize("SIPRE_WORKLOADS", options.workloads);
    options.instructions =
        envSize("SIPRE_INSTRUCTIONS", options.instructions);
    options.threads =
        static_cast<unsigned>(envSize("SIPRE_THREADS", options.threads));
    if (std::getenv("SIPRE_NO_CACHE") != nullptr)
        options.use_cache = false;
    return options;
}

double
CampaignResult::geomeanSpeedup(SimResult WorkloadRecord::*config) const
{
    std::vector<double> speedups;
    speedups.reserve(workloads.size());
    for (const auto &rec : workloads) {
        const double base = rec.cons.ipc();
        const double ipc = (rec.*config).ipc();
        if (base > 0.0 && ipc > 0.0)
            speedups.push_back(ipc / base);
    }
    return geomean(speedups);
}

CampaignResult
runStandardCampaign(const CampaignOptions &options, std::ostream *progress)
{
    CampaignResult result;
    result.options = options;

    if (options.use_cache && loadCampaign(options, result)) {
        if (progress) {
            *progress << "[campaign] loaded " << result.workloads.size()
                      << " workloads from cache\n";
        }
        return result;
    }
    result.workloads.clear();

    const auto suite = synth::cvp1LikeSuite(options.workloads);
    result.workloads.resize(suite.size());

    unsigned threads = options.threads;
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
        threads = std::min<unsigned>(
            threads, static_cast<unsigned>(suite.size()));
    }

    std::mutex io_mutex;
    std::size_t next = 0;
    std::mutex next_mutex;

    auto worker = [&]() {
        for (;;) {
            std::size_t index;
            {
                std::lock_guard<std::mutex> lock(next_mutex);
                if (next >= suite.size())
                    return;
                index = next++;
            }
            result.workloads[index] = runOneWorkload(
                suite[index], options.instructions, options.fast_forward);
            if (progress) {
                std::lock_guard<std::mutex> lock(io_mutex);
                *progress << "[campaign] " << suite[index].name
                          << " done (cons "
                          << result.workloads[index].cons.ipc()
                          << " IPC, industry "
                          << result.workloads[index].industry.ipc()
                          << " IPC)\n";
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &thread : pool)
        thread.join();

    if (options.use_cache)
        saveCampaign(options, result);
    return result;
}

} // namespace sipre
