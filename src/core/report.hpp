/**
 * @file
 * Human-readable report of one simulation run: the full front-end
 * characterization (scenario taxonomy, stall breakdown, fetch-latency
 * split), cache/branch statistics, and IPC.
 */
#ifndef SIPRE_CORE_REPORT_HPP
#define SIPRE_CORE_REPORT_HPP

#include <iosfwd>

#include "core/sim_result.hpp"

namespace sipre
{

/** Print a multi-section report of a run to `os`. */
void printReport(const SimResult &result, std::ostream &os);

} // namespace sipre

#endif // SIPRE_CORE_REPORT_HPP
