#include "core/report.hpp"

#include <iomanip>
#include <ostream>

namespace sipre
{

namespace
{

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

double
perKilo(std::uint64_t events, const SimResult &r)
{
    return r.effective_instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(events) /
                     static_cast<double>(r.effective_instructions);
}

} // namespace

void
printReport(const SimResult &r, std::ostream &os)
{
    const auto &f = r.frontend;
    os << std::fixed << std::setprecision(2);
    os << "=== " << r.workload << " / " << r.config_label << " ===\n";
    os << "instructions " << r.effective_instructions << " (+"
       << (r.instructions - r.effective_instructions)
       << " sw prefetches), cycles " << r.cycles << ", IPC " << r.ipc()
       << "\n\n";

    os << "front-end state taxonomy (Sec. III):\n";
    os << "  scenario 1 (shoot-through):  "
       << pct(f.scenario1_cycles, r.cycles) << "%\n";
    os << "  scenario 2 (stalling head):  "
       << pct(f.scenario2_cycles, r.cycles) << "%\n";
    os << "  scenario 3 (shadow stalls):  "
       << pct(f.scenario3_cycles, r.cycles) << "%\n";
    os << "  FTQ empty:                   "
       << pct(f.ftq_empty_cycles, r.cycles) << "%\n\n";

    os << "front-end events (per kilo-instruction):\n";
    os << "  head stall cycles        "
       << perKilo(f.head_stall_cycles, r) << "\n";
    os << "  waiting entries (Fig10)  "
       << perKilo(f.waiting_entry_events, r) << "\n";
    os << "  partial heads   (Fig11)  "
       << perKilo(f.partial_head_events, r) << "\n";
    os << "  mispredict stalls        "
       << perKilo(f.mispredict_stalls, r) << "\n";
    os << "  BTB-miss stalls          "
       << perKilo(f.btb_miss_stalls, r) << " (PFC resumed "
       << f.pfc_resumes << ")\n";
    os << "  fetch latency head/nonhead  "
       << f.head_fetch_latency.mean() << " / "
       << f.nonhead_fetch_latency.mean() << " cycles (p90 "
       << f.head_latency_hist.percentileUpperBound(0.9) << " / "
       << f.nonhead_latency_hist.percentileUpperBound(0.9) << ")\n";
    os << "  L1-I fetches issued/merged  " << f.l1i_fetches_issued
       << " / " << f.l1i_fetches_merged << "\n";
    os << "  sw prefetches triggered     " << f.sw_prefetches_triggered
       << "\n\n";

    os << "branch prediction:\n";
    os << "  cond MPKI " << r.branchMpki() << ", taken-BTB-miss/Ki "
       << perKilo(r.branch.btb_miss_taken, r) << ", target-miss/Ki "
       << perKilo(r.branch.target_mispredictions, r) << "\n\n";

    os << "caches (demand miss per kilo-instruction):\n";
    os << "  L1I " << r.l1iMpki() << "  (accesses " << r.l1i.accesses
       << ", prefetch useful/late " << r.l1i.prefetch_useful << "/"
       << r.l1i.prefetch_late << ")\n";
    os << "  L1D " << perKilo(r.l1d.misses, r) << "   L2 "
       << perKilo(r.l2.misses, r) << "   LLC "
       << perKilo(r.llc.misses, r) << "\n";

    if (!r.hwpf.empty()) {
        os << "\nhardware instruction prefetchers:\n";
        for (const HwPrefetchCounters &c : r.hwpf) {
            // coverage: prefetch-served fetches over all fetches that
            // would have missed without the prefetcher.
            const std::uint64_t would_miss = c.useful + r.l1i.misses;
            const double coverage =
                would_miss == 0 ? 0.0
                                : static_cast<double>(c.useful) /
                                      static_cast<double>(would_miss);
            os << "  " << c.name << ": issued " << c.issued
               << ", accuracy " << 100.0 * c.accuracy() << "%, coverage "
               << 100.0 * coverage << "%\n";
            os << "    useful/late/polluting  " << c.useful << "/"
               << c.late << "/" << c.polluting << "\n";
            os << "    filtered " << c.filtered << ", dropped ovf/redir/tlb "
               << c.dropped_overflow << "/" << c.dropped_redirect << "/"
               << c.dropped_tlb << ", deferred " << c.deferred_tlb
               << ", demoted fills " << c.demoted_fills << "\n";
        }
    }
}

} // namespace sipre
