#include "core/trace_export.hpp"

namespace sipre
{

trace_obs::CounterSeries
scenarioCounterSeries(const ScenarioTimeline &timeline,
                      const std::string &label)
{
    trace_obs::CounterSeries series;
    series.name = label;
    for (std::size_t s = 0; s < kFtqScenarioCount; ++s)
        series.keys.push_back(
            ftqScenarioName(static_cast<FtqScenario>(s)));
    series.points.reserve(timeline.windows.size());
    for (const ScenarioWindow &window : timeline.windows) {
        trace_obs::CounterSeries::Point point;
        // The track's time axis is simulated cycles, presented through
        // the trace format's microsecond field: 1 "us" == 1 cycle.
        point.ts_us = static_cast<double>(window.start_cycle);
        point.values.assign(window.cycles.begin(), window.cycles.end());
        series.points.push_back(std::move(point));
    }
    return series;
}

} // namespace sipre
