#include "core/options.hpp"

#include <charconv>

namespace sipre
{

const char *
simModeName(SimMode mode)
{
    switch (mode) {
    case SimMode::kBase: return "base";
    case SimMode::kAsmdb: return "asmdb";
    case SimMode::kNoOverhead: return "noovh";
    case SimMode::kMetadata: return "metadata";
    case SimMode::kFeedback: return "feedback";
    }
    return "base";
}

std::optional<SimMode>
parseSimMode(std::string_view name)
{
    if (name == "base")
        return SimMode::kBase;
    if (name == "asmdb")
        return SimMode::kAsmdb;
    if (name == "noovh")
        return SimMode::kNoOverhead;
    if (name == "metadata")
        return SimMode::kMetadata;
    if (name == "feedback")
        return SimMode::kFeedback;
    return std::nullopt;
}

const char *
predictorName(DirectionPredictorKind kind)
{
    switch (kind) {
    case DirectionPredictorKind::kHashedPerceptron: return "perceptron";
    case DirectionPredictorKind::kTageLite: return "tage";
    case DirectionPredictorKind::kGshare: return "gshare";
    case DirectionPredictorKind::kBimodal: return "bimodal";
    case DirectionPredictorKind::kLocal: return "local";
    }
    return "perceptron";
}

std::optional<DirectionPredictorKind>
parsePredictor(std::string_view name)
{
    if (name == "perceptron")
        return DirectionPredictorKind::kHashedPerceptron;
    if (name == "tage")
        return DirectionPredictorKind::kTageLite;
    if (name == "gshare")
        return DirectionPredictorKind::kGshare;
    if (name == "bimodal")
        return DirectionPredictorKind::kBimodal;
    if (name == "local")
        return DirectionPredictorKind::kLocal;
    return std::nullopt;
}

const char *
hwPrefetcherName(IPrefetcherKind kind)
{
    switch (kind) {
    case IPrefetcherKind::kNone: return "none";
    case IPrefetcherKind::kNextLine: return "nextline";
    case IPrefetcherKind::kEipLite: return "eip";
    case IPrefetcherKind::kFdip: return "fdip";
    case IPrefetcherKind::kMana: return "mana";
    case IPrefetcherKind::kFdipMana: return "fdip+mana";
    }
    return "none";
}

std::optional<IPrefetcherKind>
parseHwPrefetcher(std::string_view name)
{
    if (name == "none")
        return IPrefetcherKind::kNone;
    if (name == "nextline")
        return IPrefetcherKind::kNextLine;
    if (name == "eip")
        return IPrefetcherKind::kEipLite;
    if (name == "fdip")
        return IPrefetcherKind::kFdip;
    if (name == "mana")
        return IPrefetcherKind::kMana;
    if (name == "fdip+mana")
        return IPrefetcherKind::kFdipMana;
    return std::nullopt;
}

const char *
distanceProviderName(DistanceProviderKind kind)
{
    switch (kind) {
    case DistanceProviderKind::kStatic: return "static";
    case DistanceProviderKind::kProfile: return "profile";
    case DistanceProviderKind::kAdaptive: return "adaptive";
    }
    return "static";
}

std::optional<DistanceProviderKind>
parseDistanceProvider(std::string_view name)
{
    if (name == "static")
        return DistanceProviderKind::kStatic;
    if (name == "profile")
        return DistanceProviderKind::kProfile;
    if (name == "adaptive")
        return DistanceProviderKind::kAdaptive;
    return std::nullopt;
}

std::optional<std::uint64_t>
parseUnsigned(std::string_view text, std::uint64_t max)
{
    std::uint64_t value = 0;
    const char *first = text.data();
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value, 10);
    if (ec != std::errc{} || ptr != last || first == last || value > max)
        return std::nullopt;
    return value;
}

} // namespace sipre
