/**
 * @file
 * Shared knob parsing for every entry point: the CLI, the service, and
 * the bench tools all speak the same strings for modes, predictors, and
 * hardware prefetchers, so a request means the same thing everywhere.
 */
#ifndef SIPRE_CORE_OPTIONS_HPP
#define SIPRE_CORE_OPTIONS_HPP

#include <cstdint>
#include <optional>
#include <string_view>

#include "branch/direction_predictor.hpp"
#include "memory/iprefetcher.hpp"

namespace sipre
{

/** The five run modes of sipre_cli / the simulation service. */
enum class SimMode : std::uint8_t {
    kBase,       ///< plain run of the original trace
    kAsmdb,      ///< AsmDB-rewritten trace (with insertion overhead)
    kNoOverhead, ///< AsmDB triggers without inserted instructions
    kMetadata,   ///< metadata-preloader extension (paper Sec. VI)
    kFeedback    ///< feedback-directed AsmDB
};

/**
 * Where the AsmDB planner's prefetch distances come from (the
 * provider/policy split of the insertion pipeline). `static` is the
 * paper's fixed IPC×latency rule; `profile` derives distances from a
 * prior run's miss rates and Scenario-2 attribution (the two-pass
 * profile→instrument flow); `adaptive` searches per-target distances
 * that minimize Scenario-2 occupancy in evaluation runs.
 */
enum class DistanceProviderKind : std::uint8_t {
    kStatic,   ///< fixed IPC × miss-latency distance (the default)
    kProfile,  ///< distances fed back from a prior simulation's profile
    kAdaptive, ///< per-target tuning against Scenario-2 occupancy
};

/** Pipe-separated valid values, for error messages and usage text. */
inline constexpr const char *kSimModeChoices =
    "base|asmdb|noovh|metadata|feedback";
inline constexpr const char *kPredictorChoices =
    "perceptron|tage|gshare|bimodal|local";
inline constexpr const char *kHwPrefetcherChoices =
    "none|nextline|eip|fdip|mana|fdip+mana";
inline constexpr const char *kDistanceProviderChoices =
    "static|profile|adaptive";

/** Canonical name of a mode (inverse of parseSimMode). */
const char *simModeName(SimMode mode);

/** Parse a mode name; nullopt on an unknown value. */
std::optional<SimMode> parseSimMode(std::string_view name);

/** Canonical name of a direction predictor kind. */
const char *predictorName(DirectionPredictorKind kind);

/** Parse a predictor name; nullopt on an unknown value. */
std::optional<DirectionPredictorKind>
parsePredictor(std::string_view name);

/** Canonical name of an L1-I hardware-prefetcher kind. */
const char *hwPrefetcherName(IPrefetcherKind kind);

/** Parse a hardware-prefetcher name; nullopt on an unknown value. */
std::optional<IPrefetcherKind> parseHwPrefetcher(std::string_view name);

/** Canonical name of an AsmDB distance-provider kind. */
const char *distanceProviderName(DistanceProviderKind kind);

/** Parse a distance-provider name; nullopt on an unknown value. */
std::optional<DistanceProviderKind>
parseDistanceProvider(std::string_view name);

/**
 * Parse a base-10 unsigned integer, rejecting junk, trailing garbage,
 * signs, and overflow past `max`. The never-throwing flag parser for
 * every tool's numeric options.
 */
std::optional<std::uint64_t>
parseUnsigned(std::string_view text,
              std::uint64_t max = ~std::uint64_t{0});

} // namespace sipre

#endif // SIPRE_CORE_OPTIONS_HPP
