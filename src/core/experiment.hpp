/**
 * @file
 * The standard evaluation campaign behind every figure in the paper:
 * for each workload, run the five configurations of Fig. 1
 * (conservative baseline, AsmDB, AsmDB-no-overhead, industry FDP,
 * AsmDB+FDP, AsmDB+FDP-no-overhead) and record everything the figures
 * need. Workloads run in parallel and results are cached on disk so
 * each per-figure benchmark binary can reuse one computation.
 */
#ifndef SIPRE_CORE_EXPERIMENT_HPP
#define SIPRE_CORE_EXPERIMENT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/sim_result.hpp"

namespace sipre
{

/** Campaign knobs (also settable via environment, see fromEnv()). */
struct CampaignOptions
{
    std::size_t workloads = 48;          ///< how many of the 48 to run
    std::size_t instructions = 2'000'000;///< trace length per workload
    unsigned threads = 0;                ///< 0 = hardware concurrency
    bool use_cache = true;               ///< reuse/persist results file
    bool fast_forward = true;            ///< event-driven cycle skipping
    std::string cache_dir = ".";

    /**
     * Read SIPRE_WORKLOADS / SIPRE_INSTRUCTIONS / SIPRE_THREADS /
     * SIPRE_NO_CACHE from the environment on top of the defaults.
     */
    static CampaignOptions fromEnv();
};

/** All results for one workload across the five configurations. */
struct WorkloadRecord
{
    std::string name;

    SimResult cons;             ///< conservative FDP (FTQ=2) baseline
    SimResult industry;         ///< industry FDP (FTQ=24) baseline
    SimResult asmdb_cons;       ///< AsmDB on conservative
    SimResult asmdb_cons_ideal; ///< AsmDB, no insertion overhead
    SimResult asmdb_ind;        ///< AsmDB + industry FDP
    SimResult asmdb_ind_ideal;  ///< AsmDB + FDP, no insertion overhead

    // Plan/bloat measurements (Fig. 7), per profiling configuration.
    double static_bloat_cons = 0.0;
    double dynamic_bloat_cons = 0.0;
    double static_bloat_ind = 0.0;
    double dynamic_bloat_ind = 0.0;
    std::uint64_t insertions_ind = 0;
    std::uint64_t plan_min_distance_ind = 0;
};

/** The whole campaign. */
struct CampaignResult
{
    CampaignOptions options;
    std::vector<WorkloadRecord> workloads;

    /** Geomean of per-workload (metric / conservative-IPC) speedups. */
    double geomeanSpeedup(SimResult WorkloadRecord::*config) const;
};

/**
 * Run (or load from cache) the standard campaign. Progress lines are
 * written to `progress` when non-null.
 */
CampaignResult runStandardCampaign(const CampaignOptions &options,
                                   std::ostream *progress = nullptr);

// ------------------------------------------------------- results cache
//
// The on-disk campaign cache is exposed so tests can exercise the
// round-trip directly and tools can inspect or pre-seed cache files.

/** Bumped whenever the serialized layout changes; stale files reload. */
inline constexpr int kCampaignCacheVersion = 6;

/** File the campaign for `options` persists to / loads from. */
std::string campaignCachePath(const CampaignOptions &options);

/**
 * Load a previously saved campaign for `options`. Returns false (and
 * leaves `result` unspecified) on a missing file, a version or
 * workload-count mismatch, or a truncated/garbled payload.
 */
bool loadCampaign(const CampaignOptions &options, CampaignResult &result);

/** Persist `result` to campaignCachePath(options). Best-effort. */
void saveCampaign(const CampaignOptions &options,
                  const CampaignResult &result);

/**
 * Serialize one SimResult in the campaign-cache text format (lossless,
 * single line, max_digits10 doubles). Used by the service's persistent
 * result cache so both caches share one serializer.
 */
void writeSimResultText(std::ostream &os, const SimResult &result);

/** Inverse of writeSimResultText. Returns false on a garbled stream. */
bool readSimResultText(std::istream &is, SimResult &result);

} // namespace sipre

#endif // SIPRE_CORE_EXPERIMENT_HPP
