/**
 * @file
 * TLB/cache-management-aware prefetch wrapper, after Jamet et al.'s
 * characterization of the "hidden" costs of instruction prefetching:
 * prefetches that miss the iTLB trigger page walks that stall demand
 * translation, and prefetched lines inserted at normal priority evict
 * useful code.
 *
 * The wrapper interposes on an inner prefetcher's candidate stream at
 * drain time. A candidate whose page is resident in the iTLB passes
 * through; one that would page-walk is either dropped (the headline
 * policy) or parked in a bounded deferred queue until the demand
 * stream installs the translation or a deadline passes. Demoted-fill
 * insertion (the cache-management half) is applied by the cache itself
 * via Cache::setDemotePrefetchFills; the wrapper only carries the
 * configuration bit up to the builder.
 */
#ifndef SIPRE_HWPF_TLB_AWARE_HPP
#define SIPRE_HWPF_TLB_AWARE_HPP

#include <deque>
#include <memory>
#include <vector>

#include "frontend/ftq_observer.hpp"
#include "hwpf/config.hpp"
#include "memory/iprefetcher.hpp"

namespace sipre
{
class Tlb;
}

namespace sipre::hwpf
{

/** See file comment. */
class TlbAwarePrefetcher : public InstrPrefetcher, public FtqObserver
{
  public:
    TlbAwarePrefetcher(std::unique_ptr<InstrPrefetcher> inner,
                       const HwPrefetchConfig &config = {});

    /**
     * Attach the iTLB to filter against. With no TLB attached (the
     * front-end runs without one) the wrapper is inert: every candidate
     * passes through untouched.
     */
    void setTlb(const Tlb *tlb) { tlb_ = tlb; }

    const InstrPrefetcher &inner() const { return *inner_; }
    InstrPrefetcher &inner() { return *inner_; }

    void onAccess(Addr line_addr, bool hit, Cycle now) override;
    bool hasCandidates() const override;
    std::size_t drainInto(std::vector<Addr> &out, std::size_t cap,
                          Cycle now) override;
    void resetStats() override;

    // FtqObserver: forward the front-end walk to an FTQ-directed inner
    // prefetcher, and drop deferred candidates alongside the inner
    // queue when the path they were fetched for is squashed.
    void onUpcomingLine(Addr line_addr, Cycle now) override;
    void onRedirect(Cycle now) override;

    /** Candidates currently parked behind a TLB walk (tests). */
    std::size_t deferredCount() const { return deferred_.size(); }

  private:
    struct Deferred
    {
        Addr line = kNoAddr;
        Cycle deadline = 0;
    };

    /** Apply the TLB policy to one candidate; true if `line` may issue
     *  now (false: dropped or deferred, counters updated). */
    bool admit(Addr line, Cycle now);
    /** Pull inner-queue drop counters up into the wrapper's block so
     *  the surfaced counter set covers the whole component. */
    void absorbInnerDrops();

    std::unique_ptr<InstrPrefetcher> inner_;
    FtqObserver *inner_observer_; ///< inner as observer, or null
    const Tlb *tlb_ = nullptr;
    bool defer_;
    Cycle defer_window_;
    std::deque<Deferred> deferred_;
};

} // namespace sipre::hwpf

#endif // SIPRE_HWPF_TLB_AWARE_HPP
