/**
 * @file
 * MANA-lite: a record-based instruction prefetcher with spatial-region
 * footprints and stream lookahead, after Ansari et al.'s MANA.
 *
 * The demand-miss stream is segmented into spatial regions: a miss
 * opens a region anchored at its line (the trigger); subsequent demand
 * accesses within the next `region_lines` lines set bits in the
 * region's footprint; the first miss outside the span closes the
 * region, records (trigger → footprint, successor-trigger) in a
 * bounded table, and opens the next region. On a demand access to a
 * known trigger, the footprint is prefetched and the successor chain
 * is followed `stream_lookahead` records deep — the stream address
 * buffer of the full design collapsed to a per-access chase.
 */
#ifndef SIPRE_HWPF_MANA_HPP
#define SIPRE_HWPF_MANA_HPP

#include <vector>

#include "hwpf/config.hpp"
#include "memory/iprefetcher.hpp"

namespace sipre::hwpf
{

/** See file comment. */
class ManaLitePrefetcher : public InstrPrefetcher
{
  public:
    explicit ManaLitePrefetcher(const HwPrefetchConfig &config = {});

    void onAccess(Addr line_addr, bool hit, Cycle now) override;

    /** Closed regions currently recorded (test introspection). */
    std::size_t recordedRegions() const;

  private:
    struct Record
    {
        Addr trigger = kNoAddr;
        std::uint32_t footprint = 0; ///< bit i => trigger + (i+1) lines
        Addr successor = kNoAddr;    ///< next region's trigger
    };

    Record &recordFor(Addr trigger);
    void closeRegion(Addr next_trigger);
    void predictFrom(Addr trigger_line);

    std::vector<Record> table_;
    std::uint32_t region_lines_;
    std::uint32_t lookahead_;

    // Training state: the currently open region.
    Addr region_trigger_ = kNoAddr;
    std::uint32_t region_footprint_ = 0;
};

} // namespace sipre::hwpf

#endif // SIPRE_HWPF_MANA_HPP
