/**
 * @file
 * Construction and wiring recipe for the hwpf-managed prefetcher kinds
 * (IPrefetcherKind::kFdip/kMana/kFdipMana). The simulator cannot build
 * these in the hierarchy factory because they need the front-end: FDIP
 * observes the FTQ run-ahead walk, and the TLB-aware wrapper probes the
 * front-end's iTLB. buildPrefetchers() returns the components plus the
 * hook-up points the caller wires after construction:
 *
 *   auto built = hwpf::buildPrefetchers(kind);
 *   for (auto &pf : built.components)
 *       memory.installIPrefetcher(std::move(pf));
 *   if (built.ftq_observer)
 *       frontend.setFtqObserver(built.ftq_observer,
 *                               built.fdip_lookahead_blocks,
 *                               built.fdip_walk_blocks_per_cycle);
 *   for (auto *wrapper : built.tlb_aware)
 *       wrapper->setTlb(frontend.itlb());
 *   memory.l1i().setDemotePrefetchFills(built.demote_fills);
 */
#ifndef SIPRE_HWPF_BUILDER_HPP
#define SIPRE_HWPF_BUILDER_HPP

#include <memory>
#include <vector>

#include "frontend/ftq_observer.hpp"
#include "hwpf/config.hpp"
#include "hwpf/tlb_aware.hpp"
#include "memory/iprefetcher.hpp"

namespace sipre::hwpf
{

/** What buildPrefetchers() assembled; see the file comment for wiring. */
struct BuiltPrefetch
{
    /** Components to install on the L1-I, in issue-priority order
     *  (FDIP before MANA for kFdipMana: FTQ-directed candidates are
     *  the more accurate stream). Empty for non-hwpf kinds. */
    std::vector<std::unique_ptr<InstrPrefetcher>> components;

    /** Non-owning: attach to DecoupledFrontEnd::setFtqObserver, or
     *  null when no component is FTQ-directed. Points into
     *  `components`, so wire it before moving them out. */
    FtqObserver *ftq_observer = nullptr;

    /** Non-owning: wrappers that still need setTlb(frontend.itlb()). */
    std::vector<TlbAwarePrefetcher *> tlb_aware;

    /** Forwarded from HwPrefetchConfig for Cache::setDemotePrefetchFills. */
    bool demote_fills = false;

    /** Forwarded walk parameters for setFtqObserver. */
    std::uint32_t fdip_lookahead_blocks = 0;
    std::uint32_t fdip_walk_blocks_per_cycle = 0;
};

/**
 * Build the component set for `kind`. Non-hwpf kinds (none, nextline,
 * eip) return an empty BuiltPrefetch — the hierarchy factory owns
 * those. When config.tlb_aware is set, every component is wrapped in a
 * TlbAwarePrefetcher (the observer pointer then goes through the
 * wrapper so deferred candidates drop on redirects too).
 */
BuiltPrefetch buildPrefetchers(IPrefetcherKind kind,
                               const HwPrefetchConfig &config = {});

} // namespace sipre::hwpf

#endif // SIPRE_HWPF_BUILDER_HPP
