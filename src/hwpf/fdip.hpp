/**
 * @file
 * FDIP: fetch-directed instruction prefetching, driven by the decoupled
 * front-end's own fetch target queue (Asheim et al., "FDIP revisited").
 *
 * The front-end already issues every FTQ entry's lines at allocation,
 * so the FTQ itself *is* a fetch-directed prefetcher up to its depth.
 * What FDIP adds is the region beyond: the front-end's run-ahead walk
 * (frontend/ftq_observer.hpp) follows the predicted path past the FTQ
 * and reports each upcoming line; this class queues them as L1-I
 * prefetch candidates and throws the queue away on a redirect, exactly
 * as a real FDIP engine discards its prefetch queue when the FTQ is
 * squashed.
 */
#ifndef SIPRE_HWPF_FDIP_HPP
#define SIPRE_HWPF_FDIP_HPP

#include "frontend/ftq_observer.hpp"
#include "hwpf/config.hpp"
#include "memory/iprefetcher.hpp"

namespace sipre::hwpf
{

/** See file comment. */
class FdipPrefetcher : public InstrPrefetcher, public FtqObserver
{
  public:
    FdipPrefetcher() : InstrPrefetcher("fdip") {}

    /** FDIP is FTQ-directed: the demand stream carries no extra signal
     *  (every demanded line was an FTQ line the walk already saw). */
    void onAccess(Addr, bool, Cycle) override {}

    void
    onUpcomingLine(Addr line_addr, Cycle) override
    {
        emit(line_addr);
    }

    void
    onRedirect(Cycle) override
    {
        counters().dropped_redirect += queueSize();
        clearQueue();
    }
};

} // namespace sipre::hwpf

#endif // SIPRE_HWPF_FDIP_HPP
