#include "hwpf/builder.hpp"

#include <utility>

#include "hwpf/fdip.hpp"
#include "hwpf/mana.hpp"

namespace sipre::hwpf
{

namespace
{

/** Wrap `pf` per config and append it; returns the FtqObserver face of
 *  the installed component (the wrapper's when wrapped) or null. */
FtqObserver *
append(BuiltPrefetch &built, std::unique_ptr<InstrPrefetcher> pf,
       const HwPrefetchConfig &config)
{
    if (config.tlb_aware) {
        auto wrapper =
            std::make_unique<TlbAwarePrefetcher>(std::move(pf), config);
        TlbAwarePrefetcher *raw = wrapper.get();
        built.tlb_aware.push_back(raw);
        built.components.push_back(std::move(wrapper));
        return raw;
    }
    FtqObserver *observer = dynamic_cast<FtqObserver *>(pf.get());
    built.components.push_back(std::move(pf));
    return observer;
}

} // namespace

BuiltPrefetch
buildPrefetchers(IPrefetcherKind kind, const HwPrefetchConfig &config)
{
    BuiltPrefetch built;
    if (!isHwpfManaged(kind))
        return built;

    built.demote_fills = config.demote_fills;
    built.fdip_lookahead_blocks = config.fdip_lookahead_blocks;
    built.fdip_walk_blocks_per_cycle = config.fdip_walk_blocks_per_cycle;

    if (kind == IPrefetcherKind::kFdip ||
        kind == IPrefetcherKind::kFdipMana) {
        built.ftq_observer =
            append(built, std::make_unique<FdipPrefetcher>(), config);
    }
    if (kind == IPrefetcherKind::kMana ||
        kind == IPrefetcherKind::kFdipMana) {
        append(built, std::make_unique<ManaLitePrefetcher>(config), config);
    }
    return built;
}

} // namespace sipre::hwpf
