/**
 * @file
 * Tuning knobs for the first-class hardware instruction prefetchers.
 * These are microarchitectural parameters, not request-level options:
 * every entry point runs the same defaults so canonical request keys
 * stay stable across the fleet. Tests and benches construct prefetchers
 * with custom values directly.
 */
#ifndef SIPRE_HWPF_CONFIG_HPP
#define SIPRE_HWPF_CONFIG_HPP

#include <cstdint>

#include "util/types.hpp"

namespace sipre::hwpf
{

/** See file comment. */
struct HwPrefetchConfig
{
    // --- FDIP: the front-end's run-ahead walk --------------------------
    /** How far past the fetch point the walk ranges, in basic blocks.
     *  This is the "virtual FTQ depth" FDIP adds on top of the real
     *  one; 32 blocks approximates the FTQ-revisited sweet spot. */
    std::uint32_t fdip_lookahead_blocks = 32;
    /** Basic blocks the walk examines per cycle (predictor bandwidth). */
    std::uint32_t fdip_walk_blocks_per_cycle = 2;

    // --- MANA-lite: record-based spatial-region streaming --------------
    /** Bounded metadata table size (power of two). At 1024 records of
     *  ~13 bytes this is ~13 KiB — the "small metadata" point MANA
     *  makes against multi-megabyte temporal prefetchers. */
    std::uint32_t mana_table_entries = 1024;
    /** Spatial-region span tracked per trigger line (footprint bits). */
    std::uint32_t mana_region_lines = 8;
    /** Successor records followed ahead of the trigger (stream depth). */
    std::uint32_t mana_stream_lookahead = 3;

    // --- TLB/cache-management-aware wrapper (Jamet-style) ---------------
    /** Wrap the prefetcher with the iTLB filter + demoted insertion. */
    bool tlb_aware = true;
    /** Defer prefetches whose page is unmapped (true) instead of
     *  dropping them outright (false, the paper's headline policy). */
    bool tlb_defer = false;
    /** How long a deferred prefetch waits for the demand page walk to
     *  install its translation before it is dropped. */
    Cycle tlb_defer_window = 64;
    /** Insert prefetched lines at demoted replacement priority. */
    bool demote_fills = true;
};

} // namespace sipre::hwpf

#endif // SIPRE_HWPF_CONFIG_HPP
