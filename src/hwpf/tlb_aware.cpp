#include "hwpf/tlb_aware.hpp"

#include "memory/tlb.hpp"
#include "util/logging.hpp"

namespace sipre::hwpf
{

TlbAwarePrefetcher::TlbAwarePrefetcher(
    std::unique_ptr<InstrPrefetcher> inner, const HwPrefetchConfig &config)
    : InstrPrefetcher(inner->counters().name), inner_(std::move(inner)),
      inner_observer_(dynamic_cast<FtqObserver *>(inner_.get())),
      defer_(config.tlb_defer), defer_window_(config.tlb_defer_window)
{
    SIPRE_ASSERT(inner_ != nullptr, "TLB-aware wrapper needs an inner "
                                    "prefetcher");
}

void
TlbAwarePrefetcher::onAccess(Addr line_addr, bool hit, Cycle now)
{
    inner_->onAccess(line_addr, hit, now);
}

bool
TlbAwarePrefetcher::hasCandidates() const
{
    return !deferred_.empty() || inner_->hasCandidates();
}

void
TlbAwarePrefetcher::onUpcomingLine(Addr line_addr, Cycle now)
{
    if (inner_observer_ != nullptr)
        inner_observer_->onUpcomingLine(line_addr, now);
}

void
TlbAwarePrefetcher::onRedirect(Cycle now)
{
    if (inner_observer_ != nullptr)
        inner_observer_->onRedirect(now);
    // Deferred candidates were queued for the squashed path too.
    counters().dropped_redirect += deferred_.size();
    deferred_.clear();
    absorbInnerDrops();
}

void
TlbAwarePrefetcher::absorbInnerDrops()
{
    HwPrefetchCounters &in = inner_->counters();
    counters().dropped_overflow += in.dropped_overflow;
    counters().dropped_redirect += in.dropped_redirect;
    in.dropped_overflow = 0;
    in.dropped_redirect = 0;
}

bool
TlbAwarePrefetcher::admit(Addr line, Cycle now)
{
    if (tlb_ == nullptr || tlb_->contains(line))
        return true;
    if (!defer_) {
        ++counters().dropped_tlb;
        return false;
    }
    if (deferred_.size() >= kMaxQueuedCandidates) {
        ++counters().dropped_tlb;
        return false;
    }
    ++counters().deferred_tlb;
    deferred_.push_back(Deferred{line, now + defer_window_});
    return false;
}

std::size_t
TlbAwarePrefetcher::drainInto(std::vector<Addr> &out, std::size_t cap,
                              Cycle now)
{
    std::size_t moved = 0;

    // Deferred candidates first (they are oldest): release the ones
    // whose translation the demand stream has installed since, expire
    // the ones past their window.
    while (moved < cap && !deferred_.empty()) {
        const Deferred head = deferred_.front();
        if (tlb_ != nullptr && tlb_->contains(head.line)) {
            deferred_.pop_front();
            out.push_back(head.line);
            ++moved;
        } else if (now > head.deadline) {
            deferred_.pop_front();
            ++counters().dropped_tlb;
        } else {
            break; // still waiting; keep order, re-check next drain
        }
    }

    // Then the inner stream, filtered through the TLB policy.
    std::vector<Addr> scratch;
    while (moved < cap && inner_->hasCandidates()) {
        scratch.clear();
        if (inner_->drainInto(scratch, 1, now) == 0)
            break;
        if (admit(scratch.front(), now)) {
            out.push_back(scratch.front());
            ++moved;
        }
    }

    absorbInnerDrops();
    return moved;
}

void
TlbAwarePrefetcher::resetStats()
{
    InstrPrefetcher::resetStats();
    inner_->resetStats();
}

} // namespace sipre::hwpf
