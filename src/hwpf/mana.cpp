#include "hwpf/mana.hpp"

#include <bit>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace sipre::hwpf
{

namespace
{
/** L1-I line size; matches MemoryHierarchy::lineOf's 64-byte lines. */
constexpr Addr kLineBytes = 64;
} // namespace

ManaLitePrefetcher::ManaLitePrefetcher(const HwPrefetchConfig &config)
    : InstrPrefetcher("mana"), table_(config.mana_table_entries),
      region_lines_(config.mana_region_lines),
      lookahead_(config.mana_stream_lookahead)
{
    SIPRE_ASSERT(isPowerOfTwo(table_.size()),
                 "MANA table size must be a power of two");
    SIPRE_ASSERT(region_lines_ >= 1 && region_lines_ <= 32,
                 "MANA region span must fit the 32-bit footprint");
}

ManaLitePrefetcher::Record &
ManaLitePrefetcher::recordFor(Addr trigger)
{
    return table_[mix64(trigger) & (table_.size() - 1)];
}

std::size_t
ManaLitePrefetcher::recordedRegions() const
{
    std::size_t n = 0;
    for (const Record &r : table_)
        n += r.trigger != kNoAddr ? 1 : 0;
    return n;
}

void
ManaLitePrefetcher::closeRegion(Addr next_trigger)
{
    if (region_trigger_ != kNoAddr) {
        Record &rec = recordFor(region_trigger_);
        rec.trigger = region_trigger_;
        rec.footprint = region_footprint_;
        rec.successor = next_trigger;
    }
    region_trigger_ = next_trigger;
    region_footprint_ = 0;
}

void
ManaLitePrefetcher::predictFrom(Addr trigger_line)
{
    Addr chase = trigger_line;
    for (std::uint32_t depth = 0; depth <= lookahead_; ++depth) {
        const Record &rec = recordFor(chase);
        if (rec.trigger != chase)
            return;
        if (depth > 0)
            emit(chase); // successor triggers are prefetches themselves
        std::uint32_t fp = rec.footprint;
        while (fp != 0) {
            const unsigned idx = static_cast<unsigned>(std::countr_zero(fp));
            emit(chase + (Addr{idx} + 1) * kLineBytes);
            fp &= fp - 1;
        }
        if (rec.successor == kNoAddr || rec.successor == chase)
            return;
        chase = rec.successor;
    }
}

void
ManaLitePrefetcher::onAccess(Addr line_addr, bool hit, Cycle now)
{
    (void)now;
    const Addr span = Addr{region_lines_} * kLineBytes;
    const bool in_region = region_trigger_ != kNoAddr &&
                           line_addr > region_trigger_ &&
                           line_addr <= region_trigger_ + span;

    // --- Train on the demand stream -----------------------------------
    if (in_region) {
        // Lines inside the open region belong to its footprint whether
        // they hit or miss: a line the footprint prefetched last visit
        // must stay recorded even though it now hits.
        region_footprint_ |=
            1u << ((line_addr - region_trigger_) / kLineBytes - 1);
    } else if (!hit && line_addr != region_trigger_) {
        // A miss outside the span closes the region (recording the new
        // miss as its successor) and anchors the next one.
        closeRegion(line_addr);
    }

    // --- Predict on any access to a known trigger ---------------------
    predictFrom(line_addr);
}

} // namespace sipre::hwpf
