/**
 * @file
 * Full AsmDB walkthrough: profile a workload, inspect the plan the
 * planner produced (targets, distances, bloat), rewrite the trace, and
 * evaluate all four AsmDB variants against the baselines — the same
 * flow the paper's methodology section describes, on one workload.
 */
#include <cstdio>

#include "asmdb/pipeline.hpp"
#include "core/simulator.hpp"
#include "trace/synth/workload.hpp"

using namespace sipre;

namespace
{

double
runIpc(const SimConfig &config, const Trace &trace,
       const SwPrefetchTriggers *triggers = nullptr)
{
    Simulator sim(config, trace);
    if (triggers != nullptr)
        sim.setSwPrefetchTriggers(triggers);
    return sim.run().ipc();
}

} // namespace

int
main()
{
    const auto suite = synth::cvp1LikeSuite();
    const Trace trace = synth::generateTrace(suite[16], 500'000);
    std::printf("workload: %s (%zu instructions)\n\n",
                trace.name().c_str(), trace.size());

    const SimConfig cons = SimConfig::conservative();
    const SimConfig industry = SimConfig::industry();

    // Step 1-3: profile on each baseline, reconstruct the CFG, select
    // insertion sites, rewrite the "binary" (trace).
    std::printf("running AsmDB pipeline (profile -> CFG -> plan -> "
                "rewrite)...\n");
    const auto art_cons = asmdb::runPipeline(trace, cons);
    const auto art_ind = asmdb::runPipeline(trace, industry);

    const auto &plan = art_ind.plan;
    std::printf("  profiled IPC:        %.3f\n",
                art_ind.profile_run.ipc());
    std::printf("  profiled misses:     %llu (targeted %llu)\n",
                static_cast<unsigned long long>(plan.total_misses),
                static_cast<unsigned long long>(plan.targeted_misses));
    std::printf("  min distance:        %u instructions "
                "(IPC x LLC latency)\n",
                plan.min_distance);
    std::printf("  window:              %u instructions\n", plan.window);
    std::printf("  insertions:          %zu sites\n",
                plan.insertions.size());
    std::printf("  static code bloat:   %.1f%%\n",
                100.0 * art_ind.rewrite.staticBloat());
    std::printf("  dynamic code bloat:  %.1f%%\n\n",
                100.0 * art_ind.rewrite.dynamicBloat());

    // Step 4: rerun with software instruction prefetching.
    const double ipc_cons = runIpc(cons, trace);
    const double ipc_ind = runIpc(industry, trace);
    const double ipc_asmdb_cons = runIpc(cons, art_cons.rewrite.trace);
    const double ipc_asmdb_cons_nov =
        runIpc(cons, trace, &art_cons.triggers);
    const double ipc_asmdb_ind = runIpc(industry, art_ind.rewrite.trace);
    const double ipc_asmdb_ind_nov =
        runIpc(industry, trace, &art_ind.triggers);

    std::printf("%-34s %8s %12s\n", "configuration", "IPC",
                "vs cons");
    auto row = [&](const char *label, double ipc) {
        std::printf("%-34s %8.3f %+11.1f%%\n", label, ipc,
                    100.0 * (ipc / ipc_cons - 1.0));
    };
    row("conservative FDP (FTQ=2)", ipc_cons);
    row("AsmDB + conservative", ipc_asmdb_cons);
    row("AsmDB no-overhead + conservative", ipc_asmdb_cons_nov);
    row("industry FDP (FTQ=24)", ipc_ind);
    row("AsmDB + industry FDP", ipc_asmdb_ind);
    row("AsmDB no-overhead + industry FDP", ipc_asmdb_ind_nov);

    std::printf("\npaper's finding: on the conservative front-end AsmDB "
                "helps; on the industry FDP the inserted instructions' "
                "overhead consumes the benefit (%.1f%% -> %+.1f%% vs "
                "FDP), and only the no-overhead ideal still gains "
                "(%+.1f%% vs FDP).\n",
                100.0 * (ipc_asmdb_cons / ipc_cons - 1.0),
                100.0 * (ipc_asmdb_ind / ipc_ind - 1.0),
                100.0 * (ipc_asmdb_ind_nov / ipc_ind - 1.0));
    return 0;
}
