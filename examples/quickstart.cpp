/**
 * @file
 * Quickstart: generate a CVP1-like workload, run it through the
 * conservative and industry-standard front-ends, and print the
 * headline comparison — the library's two-minute tour.
 */
#include <cstdio>

#include "core/simulator.hpp"
#include "trace/synth/workload.hpp"
#include "trace/trace_stats.hpp"

using namespace sipre;

int
main()
{
    // 1. Pick a workload from the 48-entry CVP1-like suite and
    //    synthesize an instruction trace.
    const auto suite = synth::cvp1LikeSuite();
    const synth::WorkloadSpec &spec = suite[16]; // secret_srv12
    const Trace trace = synth::generateTrace(spec, 500'000);

    const TraceStats stats = computeTraceStats(trace);
    std::printf("workload %s: %llu instructions, %llu KiB code, "
                "%.1f%% branches\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(
                    stats.dynamic_instructions),
                static_cast<unsigned long long>(
                    stats.code_footprint_bytes / 1024),
                100.0 * stats.branchFraction());

    // 2. Run it on both front-end presets.
    SimResult cons, industry;
    {
        Simulator sim(SimConfig::conservative(), trace);
        cons = sim.run();
    }
    {
        Simulator sim(SimConfig::industry(), trace);
        industry = sim.run();
    }

    // 3. Compare.
    std::printf("\n%-28s %8s %10s %12s\n", "configuration", "IPC",
                "L1I MPKI", "head stalls");
    std::printf("%-28s %8.3f %10.1f %12llu\n", "conservative (FTQ=2)",
                cons.ipc(), cons.l1iMpki(),
                static_cast<unsigned long long>(
                    cons.frontend.head_stall_cycles));
    std::printf("%-28s %8.3f %10.1f %12llu\n", "industry FDP (FTQ=24)",
                industry.ipc(), industry.l1iMpki(),
                static_cast<unsigned long long>(
                    industry.frontend.head_stall_cycles));
    std::printf("\nindustry FDP speedup over conservative: %.1f%%\n",
                100.0 * (industry.ipc() / cons.ipc() - 1.0));
    return 0;
}
