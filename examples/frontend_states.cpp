/**
 * @file
 * Front-end state study (the paper's Sec. III taxonomy): run one
 * workload on a range of FTQ depths and show how the cycle budget
 * shifts between Scenario 1 (shoot-through), Scenario 2 (stalling
 * head), Scenario 3 (shadow stalls), and FTQ-empty cycles.
 */
#include <cstdio>

#include "core/simulator.hpp"
#include "trace/synth/workload.hpp"

using namespace sipre;

int
main()
{
    const auto suite = synth::cvp1LikeSuite();
    const Trace trace = synth::generateTrace(suite[0], 400'000);

    std::printf("workload: %s\n\n", trace.name().c_str());
    std::printf("%6s %8s | %8s %8s %8s %8s | %10s %10s\n", "FTQ",
                "IPC", "S1%", "S2%", "S3%", "empty%", "head-lat",
                "nonh-lat");

    for (std::uint32_t depth : {2u, 4u, 8u, 16u, 24u, 32u}) {
        Simulator sim(SimConfig::withFtqDepth(depth), trace);
        const SimResult r = sim.run();
        const double total = static_cast<double>(r.cycles);
        const auto &f = r.frontend;
        std::printf(
            "%6u %8.3f | %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %10.1f "
            "%10.1f\n",
            depth, r.ipc(), 100.0 * f.scenario1_cycles / total,
            100.0 * f.scenario2_cycles / total,
            100.0 * f.scenario3_cycles / total,
            100.0 * f.ftq_empty_cycles / total,
            f.head_fetch_latency.mean(),
            f.nonhead_fetch_latency.mean());
    }

    std::printf("\nReading the table: a deeper FTQ converts Scenario 2/3 "
                "stall cycles into Scenario 1 shoot-through cycles, while "
                "the entries that do stall the head take longer to fetch "
                "(they are the L1-I misses the run-ahead could not "
                "cover).\n");
    return 0;
}
