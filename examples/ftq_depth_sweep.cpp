/**
 * @file
 * FTQ-depth ablation across archetypes: how much decoupling each
 * workload class extracts from a deeper fetch target queue, and where
 * the returns diminish.
 */
#include <cstdio>
#include <vector>

#include "core/simulator.hpp"
#include "trace/synth/workload.hpp"

using namespace sipre;

int
main()
{
    const auto suite = synth::cvp1LikeSuite();
    // One representative per archetype.
    const std::vector<std::size_t> picks = {16, 4, 1}; // srv, int, crypto
    const std::vector<std::uint32_t> depths = {2, 4, 8, 16, 24, 32};

    std::printf("%-18s", "workload");
    for (const auto depth : depths)
        std::printf("   FTQ=%-3u", depth);
    std::printf("  gain@24\n");

    for (const std::size_t pick : picks) {
        const Trace trace = synth::generateTrace(suite[pick], 400'000);
        std::printf("%-18s", trace.name().c_str());
        std::vector<double> ipcs;
        for (const auto depth : depths) {
            Simulator sim(SimConfig::withFtqDepth(depth), trace);
            ipcs.push_back(sim.run().ipc());
            std::printf("   %7.3f", ipcs.back());
        }
        std::printf("  %+6.1f%%\n",
                    100.0 * (ipcs[4] / ipcs[0] - 1.0));
    }

    std::printf("\nserver workloads (large instruction footprints) gain "
                "the most from run-ahead; crypto kernels, whose working "
                "sets fit the L1-I, saturate at shallow depths.\n");
    return 0;
}
