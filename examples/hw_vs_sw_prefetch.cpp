/**
 * @file
 * Hardware vs software instruction prefetching, head to head, on both
 * front-end presets: next-line and EIP-lite hardware prefetchers
 * against AsmDB (realistic and idealized). The punchline mirrors the
 * paper: on the conservative front-end everything helps; on the
 * industry FDP only mechanisms without instruction overhead do.
 */
#include <cstdio>

#include "asmdb/pipeline.hpp"
#include "core/simulator.hpp"
#include "trace/synth/workload.hpp"

using namespace sipre;

namespace
{

double
run(const SimConfig &config, const Trace &trace,
    const SwPrefetchTriggers *triggers = nullptr)
{
    Simulator sim(config, trace);
    if (triggers != nullptr)
        sim.setSwPrefetchTriggers(triggers);
    return sim.run().ipc();
}

} // namespace

int
main()
{
    const auto suite = synth::cvp1LikeSuite();
    const Trace trace = synth::generateTrace(suite[16], 500'000);
    std::printf("workload: %s\n\n", trace.name().c_str());

    for (const SimConfig &preset :
         {SimConfig::conservative(), SimConfig::industry()}) {
        const double base = run(preset, trace);

        SimConfig nextline = preset;
        nextline.memory.l1i_prefetcher = IPrefetcherKind::kNextLine;
        SimConfig eip = preset;
        eip.memory.l1i_prefetcher = IPrefetcherKind::kEipLite;

        const auto artifacts = asmdb::runPipeline(trace, preset);
        double asmdb_ipc;
        {
            Simulator sim(preset, artifacts.rewrite.trace);
            asmdb_ipc = sim.run().ipc();
        }
        const double noovh = run(preset, trace, &artifacts.triggers);

        std::printf("%s (base IPC %.3f)\n", preset.label.c_str(), base);
        auto row = [&](const char *label, double ipc) {
            std::printf("  %-28s %.3f  (%+.1f%%)\n", label, ipc,
                        100.0 * (ipc / base - 1.0));
        };
        row("next-line HW prefetcher", run(nextline, trace));
        row("EIP-lite HW prefetcher", run(eip, trace));
        row("AsmDB (inserted instrs)", asmdb_ipc);
        row("AsmDB (no overhead)", noovh);
        std::printf("\n");
    }

    std::printf("hardware prefetchers pay no instruction overhead, so "
                "they keep helping on the aggressive front-end; AsmDB's "
                "benefit survives only in its idealized no-overhead "
                "form — the paper's core observation.\n");
    return 0;
}
